"""Erasure-code substrate: layouts, chains, encoding, and decoding.

Public surface:

* :func:`make_code` / :data:`CODES` — construct any of the four 3DFT codes
  (``star``, ``triple-star``, ``tip``, ``hdd1``) for a prime ``p``.
* :class:`CodeLayout`, :class:`ParityChain`, :class:`Direction` — the
  stripe geometry FBF reasons about.
* :class:`Encoder`, :func:`decode` — payload-level encode/decode.
"""

from .decoder import DecodeError, decode, peel_decode, solve_decode
from .encoder import Encoder, empty_stripe, encode_by_chains, verify_stripe, xor_cells
from .hdd1 import make_hdd1
from .layout import Cell, CellKind, CodeLayout, Direction, LayoutError, ParityChain
from .registry import CODES, available_codes, make_code
from .star import make_star
from .tip import make_tip
from .triple_star import make_triple_star
from .update import UpdateComplexity, parities_touched, update_complexity

__all__ = [
    "Cell",
    "CellKind",
    "CodeLayout",
    "Direction",
    "LayoutError",
    "ParityChain",
    "Encoder",
    "empty_stripe",
    "encode_by_chains",
    "verify_stripe",
    "xor_cells",
    "DecodeError",
    "decode",
    "peel_decode",
    "solve_decode",
    "CODES",
    "available_codes",
    "make_code",
    "make_star",
    "make_tip",
    "make_triple_star",
    "make_hdd1",
    "UpdateComplexity",
    "parities_touched",
    "update_complexity",
]
