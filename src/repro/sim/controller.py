"""The RAID controller: turns failure events into recovery I/O.

For each event the controller (paper Figure 4):

1. runs the *Recovery Method Generator* — the code backend's
   :meth:`~repro.engine.backend.CodeBackend.build_plan` — and derives the
   priorities (the wall clock spent here is FBF's *temporal overhead*,
   Table IV);
2. fetches every surviving read of each recovery step through the buffer
   cache (in parallel across disks, or serially);
3. charges XOR/decode computation time and writes the recovered chunk to
   the failed disk's spare area.

Recovery plans are memoized by the backend's plan key — the paper notes
priorities "can be enumerated once a same format of partial stripe error
is detected again, and no more calculation is required".  Constructed
without an explicit backend, the controller builds an
:class:`~repro.engine.backends.XORBackend` from the array's layout — the
original XOR-world behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Generator

from ..core.scheme import SchemeMode
from ..engine.backend import CodeBackend, EnginePlan
from ..engine.backends import XORBackend
from ..engine.tracesim import PlanCache
from .array import DiskArray
from .cache_sim import TimedBufferCache
from .datapath import VerifyingDataPath
from .kernel import Environment

__all__ = ["OverheadLog", "RAIDController"]


@dataclass
class OverheadLog:
    """Wall-clock cost of plan + priority computation (Table IV)."""

    samples: list[float] = field(default_factory=list)
    plan_cache_hits: int = 0

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0


class RAIDController:
    """Drives failure recovery through a buffer cache."""

    def __init__(
        self,
        env: Environment,
        array: DiskArray,
        scheme_mode: SchemeMode = "fbf",
        xor_time_per_chunk: float = 1e-5,
        parallel_chain_reads: bool = True,
        datapath: VerifyingDataPath | None = None,
        backend: CodeBackend | None = None,
    ):
        if xor_time_per_chunk < 0:
            raise ValueError(f"xor_time_per_chunk must be >= 0, got {xor_time_per_chunk}")
        if backend is None:
            backend = XORBackend(array.geometry.layout, scheme_mode)
        self.env = env
        self.array = array
        self.backend = backend
        self.scheme_mode: str = backend.scheme_label
        self.xor_time_per_chunk = xor_time_per_chunk
        self.parallel_chain_reads = parallel_chain_reads
        self.datapath = datapath
        self.overhead = OverheadLog()
        self._plan_cache = PlanCache(backend)
        self.errors_recovered = 0
        self.chunks_recovered = 0

    def plan_for(self, error: Any) -> EnginePlan:
        """The recovery plan for an event, via the engine's shared
        :class:`~repro.engine.tracesim.PlanCache`; misses are timed."""
        plans = self._plan_cache
        size_before = len(plans)
        t0 = time.perf_counter()
        plan = plans.get(error)
        if len(plans) == size_before:  # memoized: no plan was built
            self.overhead.plan_cache_hits += 1
            return plan
        plan.priorities  # materialise inside the timed region (Table IV)
        self.overhead.samples.append(time.perf_counter() - t0)
        return plan

    def recover_error(self, error: Any, cache: TimedBufferCache) -> Generator:
        """Process generator: fully repair one failure event."""
        plan = self.plan_for(error)
        priority = plan.priority_of
        stripe = error.stripe
        # Everything below runs once per recovery step across a sweep, so
        # the bound methods are hoisted into locals and the parallel/serial
        # branch is lifted out of the loop.  The yielded event sequence is
        # untouched — the bit-identity contract (DESIGN.md §16).
        env = self.env
        spawn = env.process
        all_of = env.all_of
        timeout = env.timeout
        get_chunk = cache.get_chunk
        write_spare = self.array.write_spare_chunk
        xor_time = self.xor_time_per_chunk
        datapath = self.datapath
        if self.parallel_chain_reads:
            for step in plan.steps:
                reads = step.reads
                yield all_of(
                    [
                        spawn(get_chunk(stripe, unit, priority(unit)))
                        for unit in reads
                    ]
                )
                # XOR/decode of the fetched chain members rebuilds the chunk.
                yield timeout(xor_time * len(reads))
                if datapath is not None:
                    datapath.rebuild(stripe, step.detail)
                # Write the recovered chunk to the failed disk's spare area.
                yield from write_spare(stripe, step.target)
                self.chunks_recovered += 1
        else:
            for step in plan.steps:
                reads = step.reads
                for unit in reads:
                    yield from get_chunk(stripe, unit, priority(unit))
                yield timeout(xor_time * len(reads))
                if datapath is not None:
                    datapath.rebuild(stripe, step.detail)
                yield from write_spare(stripe, step.target)
                self.chunks_recovered += 1
        self.errors_recovered += 1
