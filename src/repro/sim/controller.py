"""The RAID controller: turns partial stripe errors into recovery I/O.

For each error the controller (paper Figure 4):

1. runs the *Recovery Method Generator* — :func:`repro.core.generate_plan`
   — and derives the :class:`~repro.core.PriorityDictionary` (the wall
   clock spent here is FBF's *temporal overhead*, Table IV);
2. fetches every surviving member of each selected chain through the
   buffer cache (in parallel across disks, or serially);
3. charges XOR computation time and writes the recovered chunk to the
   failed disk's spare area.

Recovery plans are memoized by error *shape* — the paper notes priorities
"can be enumerated once a same format of partial stripe error is detected
again, and no more calculation is required".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Generator

from ..core.priorities import PriorityDictionary
from ..core.scheme import RecoveryPlan, SchemeMode, generate_plan
from ..workloads.errors import PartialStripeError
from .array import DiskArray
from .cache_sim import TimedBufferCache
from .datapath import VerifyingDataPath
from .kernel import Environment

__all__ = ["OverheadLog", "RAIDController"]


@dataclass
class OverheadLog:
    """Wall-clock cost of plan + priority computation (Table IV)."""

    samples: list[float] = field(default_factory=list)
    plan_cache_hits: int = 0

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0


class RAIDController:
    """Drives partial stripe recovery through a buffer cache."""

    def __init__(
        self,
        env: Environment,
        array: DiskArray,
        scheme_mode: SchemeMode = "fbf",
        xor_time_per_chunk: float = 1e-5,
        parallel_chain_reads: bool = True,
        datapath: VerifyingDataPath | None = None,
    ):
        if xor_time_per_chunk < 0:
            raise ValueError(f"xor_time_per_chunk must be >= 0, got {xor_time_per_chunk}")
        self.env = env
        self.array = array
        self.scheme_mode: SchemeMode = scheme_mode
        self.xor_time_per_chunk = xor_time_per_chunk
        self.parallel_chain_reads = parallel_chain_reads
        self.datapath = datapath
        self.overhead = OverheadLog()
        self._plan_cache: dict[tuple[int, int, int], tuple[RecoveryPlan, PriorityDictionary]] = {}
        self.errors_recovered = 0
        self.chunks_recovered = 0

    def plan_for(
        self, error: PartialStripeError
    ) -> tuple[RecoveryPlan, PriorityDictionary]:
        """Plan + priorities for an error, memoized by shape; timed."""
        key = error.shape
        cached = self._plan_cache.get(key)
        if cached is not None:
            self.overhead.plan_cache_hits += 1
            return cached
        layout = self.array.geometry.layout
        t0 = time.perf_counter()
        plan = generate_plan(layout, error.cells(layout), self.scheme_mode)
        priorities = PriorityDictionary(plan)
        self.overhead.samples.append(time.perf_counter() - t0)
        self._plan_cache[key] = (plan, priorities)
        return plan, priorities

    def recover_error(
        self, error: PartialStripeError, cache: TimedBufferCache
    ) -> Generator:
        """Process generator: fully repair one partial stripe error."""
        plan, priorities = self.plan_for(error)
        stripe = error.stripe
        for assignment in plan.assignments:
            reads = assignment.reads
            if self.parallel_chain_reads:
                fetches = [
                    self.env.process(
                        cache.get_chunk(stripe, cell, priorities.lookup(cell))
                    )
                    for cell in reads
                ]
                yield self.env.all_of(fetches)
            else:
                for cell in reads:
                    yield from cache.get_chunk(stripe, cell, priorities.lookup(cell))
            # XOR of the fetched chain members to rebuild the lost chunk.
            yield self.env.timeout(self.xor_time_per_chunk * len(reads))
            if self.datapath is not None:
                self.datapath.rebuild(stripe, assignment)
            # Write the recovered chunk to the failed disk's spare area.
            yield from self.array.write_spare_chunk(stripe, assignment.failed_cell)
            self.chunks_recovered += 1
        self.errors_recovered += 1
