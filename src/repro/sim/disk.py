"""Disk service-time models and the simulated disk itself.

Two models:

* :class:`FixedLatencyModel` — every access costs a constant service time.
  The paper's evaluation uses exactly this (10 ms per disk access, 0.5 ms
  per buffer-cache access), so it is the default everywhere.
* :class:`SeekRotateTransferModel` — a classic mechanical model: seek time
  grows with the square root of cylinder distance, rotational latency is
  drawn uniformly in one revolution, transfer time is size over rate.
  Useful for sensitivity studies; deterministic given its seed.

A :class:`Disk` owns a queue-depth-1 FIFO resource, so concurrent requests
from parallel reconstruction workers serialize and experience queueing
delay — the effect that turns cache misses into response-time tails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Literal, Protocol

import numpy as np

from ..utils import make_rng
from .kernel import Environment, Resource

__all__ = [
    "AccessKind",
    "ServiceTimeModel",
    "FixedLatencyModel",
    "SeekRotateTransferModel",
    "DiskStats",
    "Disk",
]

AccessKind = Literal["read", "write"]


class ServiceTimeModel(Protocol):
    """Maps one access to a service time in seconds (may keep head state)."""

    def service_time(self, lba: int, nbytes: int, kind: AccessKind) -> float: ...


@dataclass
class FixedLatencyModel:
    """Constant service time per access (paper: 10 ms for a data disk)."""

    latency: float = 0.010

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ValueError(f"latency must be > 0, got {self.latency}")

    def service_time(self, lba: int, nbytes: int, kind: AccessKind) -> float:
        return self.latency


@dataclass
class SeekRotateTransferModel:
    """Mechanical HDD model: seek + rotation + transfer.

    Seek time follows the standard ``a + b * sqrt(cylinder distance)``
    curve; rotational latency is uniform over one revolution (drawn from a
    private seeded RNG so runs stay reproducible); transfer is linear in
    request size.
    """

    cylinders: int = 50_000
    bytes_per_cylinder: int = 4 * 1024 * 1024
    seek_base: float = 0.0008
    seek_factor: float = 0.00004
    rpm: float = 7200.0
    transfer_rate: float = 150e6  # bytes/second
    seed: int = 0
    _head: int = field(default=0, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.cylinders < 1 or self.bytes_per_cylinder < 1:
            raise ValueError("geometry must be positive")
        if self.rpm <= 0 or self.transfer_rate <= 0:
            raise ValueError("rpm and transfer_rate must be positive")
        self._rng = make_rng(self.seed)

    def _cylinder_of(self, lba: int) -> int:
        return min(self.cylinders - 1, lba // self.bytes_per_cylinder)

    def service_time(self, lba: int, nbytes: int, kind: AccessKind) -> float:
        target = self._cylinder_of(lba)
        distance = abs(target - self._head)
        self._head = target
        seek = 0.0 if distance == 0 else self.seek_base + self.seek_factor * np.sqrt(distance)
        rotation = float(self._rng.uniform(0.0, 60.0 / self.rpm))
        transfer = nbytes / self.transfer_rate
        return seek + rotation + transfer


@dataclass
class DiskStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    queue_wait: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


class Disk:
    """One simulated disk: a service-time model behind a FIFO queue.

    ``queue_depth`` > 1 admits that many requests concurrently (NCQ /
    SSD-style internal parallelism); each still pays its own service
    time, but queueing delay shrinks under load.
    """

    def __init__(
        self,
        env: Environment,
        disk_id: int,
        model: ServiceTimeModel | None = None,
        queue_depth: int = 1,
    ):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.env = env
        self.disk_id = disk_id
        self.model = model if model is not None else FixedLatencyModel()
        self.queue = Resource(env, capacity=queue_depth)
        self.stats = DiskStats()
        #: topology hooks: which node owns this disk (None = standalone),
        #: and the fail-slow multiplier a limplocked node applies.  The
        #: default 1.0 multiply is IEEE-exact, preserving bit-identity.
        self.node_id: int | None = None
        self.service_scale = 1.0

    def access(self, kind: AccessKind, lba: int, nbytes: int) -> Generator:
        """Process generator: queue, serve, account.  Yields until done."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be > 0, got {nbytes}")
        arrived = self.env.now
        req = self.queue.request()
        yield req
        self.stats.queue_wait += self.env.now - arrived
        try:
            service = self.model.service_time(lba, nbytes, kind) * self.service_scale
            yield self.env.timeout(service)
            self.stats.busy_time += service
            if kind == "read":
                self.stats.reads += 1
                self.stats.bytes_read += nbytes
            else:
                self.stats.writes += 1
                self.stats.bytes_written += nbytes
        finally:
            self.queue.release(req)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Disk({self.disk_id}, q={self.queue.queue_length})"
