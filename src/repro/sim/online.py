"""Online recovery: foreground I/O served *during* reconstruction.

The paper's conclusion claims FBF "is considered to be effective for
parallel and online recovery as well"; this module tests that claim
head-on.  Errors arrive over time; reconstruction workers repair them in
the background; an application read stream runs concurrently.  A read of
a currently-failed chunk becomes a *degraded read*: the controller
fetches the chunk's horizontal chain through the buffer cache and XORs it
on the fly — the latency penalty the window of vulnerability inflicts on
real traffic.

Cache interplay (the FBF-relevant part): background recovery, degraded
reads, and normal foreground reads all share one buffer cache, so the
replacement policy decides whether recovery's shared chunks survive the
foreground churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Sequence

if TYPE_CHECKING:  # annotation-only: sim stays level with workloads' consumers
    from ..workloads.app_io import AppRequest
    from ..workloads.errors import PartialStripeError

from ..cache.registry import make_policy
from ..codes.layout import CodeLayout, Direction
from .array import ArrayGeometry
from .cache_sim import TimedBufferCache
from .controller import RAIDController
from .kernel import Environment, Resource, Store
from .reconstruction import SimConfig, build_array

__all__ = ["OnlineReport", "run_online_recovery"]


@dataclass
class OnlineReport:
    """Foreground and recovery outcomes of one online-recovery run."""

    policy: str
    code: str
    p: int
    n_errors: int
    #: simulated time from the first error to the last spare write.
    recovery_makespan: float
    app_requests: int
    degraded_reads: int
    normal_total_time: float = 0.0
    degraded_total_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    disk_reads: int = 0
    #: per-error seconds from occurrence to detection (0 when immediate).
    detection_latencies: list[float] = field(default_factory=list)
    #: errors first discovered by a foreground access, not the scrubber.
    access_detections: int = 0

    @property
    def mean_detection_latency(self) -> float:
        return (
            sum(self.detection_latencies) / len(self.detection_latencies)
            if self.detection_latencies
            else 0.0
        )

    @property
    def normal_reads(self) -> int:
        return self.app_requests - self.degraded_reads

    @property
    def normal_mean_response(self) -> float:
        return self.normal_total_time / self.normal_reads if self.normal_reads else 0.0

    @property
    def degraded_mean_response(self) -> float:
        return (
            self.degraded_total_time / self.degraded_reads
            if self.degraded_reads
            else 0.0
        )

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def run_online_recovery(
    layout: CodeLayout,
    errors: Sequence[PartialStripeError],
    app_requests: Sequence[AppRequest],
    config: SimConfig = SimConfig(),
    detection: str = "immediate",
    scrub_scan_time: float = 0.01,
    scrub_cycle: int = 1024,
) -> OnlineReport:
    """Simulate concurrent foreground reads and background recovery.

    The cache is shared (not partitioned): ``config.workers`` background
    workers pull repair jobs from a queue as errors are detected.

    ``detection`` selects how errors are found (paper Figure 4):

    * ``"immediate"`` — the moment they occur (an ideal detector);
    * ``"scrub"`` — by a background scrubber sweeping stripes cyclically
      (``scrub_scan_time`` seconds per stripe over a ``scrub_cycle``-stripe
      region), or earlier if a foreground read trips over the failed
      chunk.  Detection latency per error is recorded.
    """
    if detection not in ("immediate", "scrub"):
        raise ValueError(f"detection must be 'immediate' or 'scrub', got {detection!r}")
    if scrub_scan_time <= 0 or scrub_cycle < 1:
        raise ValueError("scrub_scan_time must be > 0 and scrub_cycle >= 1")
    if not errors:
        raise ValueError("no errors given")
    errors = sorted(errors)
    app_requests = sorted(app_requests)
    env = Environment()
    geometry = ArrayGeometry(
        layout=layout, chunk_size=config.chunk_bytes, stripes=config.array_stripes
    )
    array = build_array(env, geometry, config)
    controller = RAIDController(
        env, array,
        scheme_mode=config.scheme_mode,
        xor_time_per_chunk=config.xor_time_per_chunk,
        parallel_chain_reads=config.parallel_chain_reads,
    )
    policy = make_policy(config.policy, config.cache_blocks_total, **config.policy_kwargs)
    cache = TimedBufferCache(env, policy, array, hit_time=config.hit_time)

    failed_now: set[tuple[int, tuple[int, int]]] = set()
    jobs: Store = Store(env)
    report = OnlineReport(
        policy=config.policy,
        code=layout.name,
        p=layout.p,
        n_errors=len(errors),
        recovery_makespan=0.0,
        app_requests=0,
        degraded_reads=0,
    )
    last_repair = [0.0]

    pool = Resource(env, capacity=config.workers)
    dispatched: set[int] = set()  # stripes whose repair has been queued
    error_by_stripe = {e.stripe: e for e in errors}

    def dispatch(error: PartialStripeError, via_access: bool = False) -> None:
        if error.stripe in dispatched:
            return
        dispatched.add(error.stripe)
        report.detection_latencies.append(env.now - error.time)
        if via_access:
            report.access_detections += 1
        jobs.put(error)

    def scrub_detect_time(error: PartialStripeError) -> float:
        """Next time the cyclic scrubber pass covers the error's stripe."""
        slot = error.stripe % scrub_cycle
        k0 = int(error.time / scrub_scan_time)
        delta = (slot - (k0 % scrub_cycle)) % scrub_cycle
        if delta == 0:
            return error.time  # the scrubber is on this stripe right now
        return (k0 + delta) * scrub_scan_time

    def injector() -> Generator:
        for error in errors:
            if env.now < error.time:
                yield env.timeout(error.time - env.now)
            for cell in error.cells(layout):
                failed_now.add((error.stripe, cell))
            if detection == "immediate":
                dispatch(error)
            else:
                env.process(scrub_watch(error), name="scrub-watch")

    def scrub_watch(error: PartialStripeError) -> Generator:
        when = scrub_detect_time(error)
        if env.now < when:
            yield env.timeout(when - env.now)
        dispatch(error)

    def repair_one(error: PartialStripeError) -> Generator:
        req = pool.request()
        yield req
        try:
            yield from controller.recover_error(error, cache)
        finally:
            pool.release(req)
        for cell in error.cells(layout):
            failed_now.discard((error.stripe, cell))
        last_repair[0] = env.now

    def dispatcher() -> Generator:
        for _ in range(len(errors)):
            error = yield jobs.get()
            env.process(repair_one(error), name="repair")

    def degraded_read(stripe: int, cell) -> Generator:
        """Rebuild a failed chunk on demand via its horizontal chain."""
        chains = [
            ch for ch in layout.chains_for(cell)
            if ch.direction is Direction.HORIZONTAL
        ] or list(layout.chains_for(cell))
        chain = chains[0]
        fetches = [
            env.process(cache.get_chunk(stripe, other, None))
            for other in sorted(chain.others(cell))
            if (stripe, other) not in failed_now
        ]
        if fetches:
            yield env.all_of(fetches)
        yield env.timeout(config.xor_time_per_chunk * max(1, len(fetches)))

    def application() -> Generator:
        for req in app_requests:
            if env.now < req.time:
                yield env.timeout(req.time - env.now)
            start = env.now
            report.app_requests += 1
            if (req.stripe, req.cell) in failed_now:
                # access-triggered detection (paper Figure 4: errors are
                # "discovered when particular chunks are accessed")
                error = error_by_stripe.get(req.stripe)
                if error is not None:
                    dispatch(error, via_access=True)
                report.degraded_reads += 1
                yield from degraded_read(req.stripe, req.cell)
                report.degraded_total_time += env.now - start
            else:
                yield from cache.get_chunk(req.stripe, req.cell, None)
                report.normal_total_time += env.now - start

    env.process(injector(), name="error-injector")
    env.process(dispatcher(), name="dispatcher")
    env.process(application(), name="application")
    env.run()  # quiescence: app stream done and every repair written
    report.recovery_makespan = (
        last_repair[0] - errors[0].time if last_repair[0] else 0.0
    )
    report.cache_hits = policy.stats.hits
    report.cache_misses = policy.stats.misses
    report.disk_reads = cache.log.disk_reads
    return report
