"""The simulated disk array: geometry, address mapping, chunk I/O.

Addressing follows the usual array-code convention: stripes are stacked
vertically, so chunk ``(stripe, row, column)`` lives on disk ``column`` at
chunk offset ``stripe * rows + row``.  Each disk reserves a spare region
after the data region; recovered chunks are written to the failed chunk's
spare slot on the *same* disk (sector/chunk sparing, as in the paper —
partial errors are repaired in place, not by disk replacement).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Generator, Hashable

from ..codes.layout import Cell, CodeLayout
from .disk import Disk, ServiceTimeModel
from .kernel import Environment

__all__ = ["ArrayGeometry", "FlatGeometry", "DiskArray"]


@dataclass(frozen=True)
class ArrayGeometry:
    """Static shape of the simulated array."""

    layout: CodeLayout
    chunk_size: int = 32 * 1024  # the paper's 32 KB chunks
    stripes: int = 100_000

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {self.stripes}")

    @property
    def num_disks(self) -> int:
        return self.layout.num_disks

    @property
    def chunks_per_disk(self) -> int:
        return self.stripes * self.layout.rows

    def check(self, stripe: int, cell: Cell) -> None:
        row, col = cell
        if not 0 <= stripe < self.stripes:
            raise ValueError(f"stripe {stripe} outside [0, {self.stripes})")
        if not 0 <= row < self.layout.rows:
            raise ValueError(f"row {row} outside [0, {self.layout.rows})")
        if not 0 <= col < self.num_disks:
            raise ValueError(f"column {col} outside [0, {self.num_disks})")

    def disk_index(self, cell: Cell) -> int:
        """Which disk holds a cell — its column."""
        return cell[1]

    def lba(self, stripe: int, cell: Cell) -> int:
        """Byte address of a chunk in its disk's data region."""
        self.check(stripe, cell)
        row, _ = cell
        return (stripe * self.layout.rows + row) * self.chunk_size

    def spare_lba(self, stripe: int, cell: Cell) -> int:
        """Byte address of the chunk's spare slot (after the data region)."""
        data_end = self.chunks_per_disk * self.chunk_size
        return data_end + self.lba(stripe, cell)


@dataclass(frozen=True)
class FlatGeometry:
    """One-unit-per-disk placement for codes without a grid layout.

    LRC stripes are flat tuples of blocks; distributed placement puts
    block ``i`` of every stripe on disk ``i``, one chunk per stripe per
    disk.  ``units`` is the ordered tuple of block identifiers — any
    hashables — defining the disk assignment.
    """

    units: tuple[Hashable, ...]
    chunk_size: int = 32 * 1024
    stripes: int = 100_000

    def __post_init__(self) -> None:
        if not self.units:
            raise ValueError("units must be non-empty")
        if len(set(self.units)) != len(self.units):
            raise ValueError("units must be distinct")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {self.stripes}")

    @cached_property
    def _index(self) -> dict[Hashable, int]:
        return {u: i for i, u in enumerate(self.units)}

    @property
    def num_disks(self) -> int:
        return len(self.units)

    @property
    def chunks_per_disk(self) -> int:
        return self.stripes

    def check(self, stripe: int, unit: Hashable) -> None:
        if not 0 <= stripe < self.stripes:
            raise ValueError(f"stripe {stripe} outside [0, {self.stripes})")
        if unit not in self._index:
            raise KeyError(f"unknown unit {unit!r}")

    def disk_index(self, unit: Hashable) -> int:
        """Which disk holds a unit — its position in ``units``."""
        return self._index[unit]

    def lba(self, stripe: int, unit: Hashable) -> int:
        """Byte address of a unit's chunk in its disk's data region."""
        self.check(stripe, unit)
        return stripe * self.chunk_size

    def spare_lba(self, stripe: int, unit: Hashable) -> int:
        """Byte address of the chunk's spare slot (after the data region)."""
        data_end = self.chunks_per_disk * self.chunk_size
        return data_end + self.lba(stripe, unit)


class DiskArray:
    """The bank of simulated disks plus chunk-level read/write helpers."""

    def __init__(
        self,
        env: Environment,
        geometry: ArrayGeometry | FlatGeometry,
        disk_model_factory: Callable[[int], ServiceTimeModel] | None = None,
        disk_factory: Callable[[Environment, int], object] | None = None,
        topology=None,
        placement: Callable[[int], int] | None = None,
        home_node: int = 0,
    ):
        """``disk_factory`` builds each disk outright (e.g. a
        :class:`~repro.sim.scheduling.ScheduledDisk`); otherwise plain
        :class:`Disk` objects are built, optionally with per-disk service
        models from ``disk_model_factory``.

        With a :class:`~repro.sim.topology.ClusterTopology`, disks attach
        to nodes (``placement`` maps disk index → node id, default
        round-robin) and every chunk read/write additionally charges the
        links between the disk's node and ``home_node`` (the controller).
        In the degenerate one-node topology every route is empty, so the
        simulation is event-for-event identical to ``topology=None``."""
        self.env = env
        self.geometry = geometry
        self.topology = topology
        self.home_node = home_node
        if disk_factory is not None:
            self.disks = [disk_factory(env, i) for i in range(geometry.num_disks)]
        elif disk_model_factory is None:
            self.disks = [Disk(env, i) for i in range(geometry.num_disks)]
        else:
            self.disks = [
                Disk(env, i, disk_model_factory(i)) for i in range(geometry.num_disks)
            ]
        if topology is not None:
            n_nodes = len(topology.nodes)
            place = placement if placement is not None else (lambda i: i % n_nodes)
            for i, disk in enumerate(self.disks):
                topology.nodes[place(i)].attach(disk)

    def disk_of(self, cell: Hashable) -> Disk:
        return self.disks[self.geometry.disk_index(cell)]

    def read_chunk(self, stripe: int, cell: Cell) -> Generator:
        """Process generator: one chunk read from the data region.

        Under a topology the chunk then travels disk-node → home node,
        charging every link on the route."""
        disk = self.disk_of(cell)
        yield from disk.access(
            "read", self.geometry.lba(stripe, cell), self.geometry.chunk_size
        )
        if self.topology is not None and disk.node_id is not None:
            yield from self.topology.transfer(
                disk.node_id, self.home_node, self.geometry.chunk_size
            )

    def write_spare_chunk(self, stripe: int, cell: Cell) -> Generator:
        """Process generator: write a recovered chunk to its spare slot.

        Under a topology the recovered bytes first travel home node →
        disk node before the spare write is issued."""
        disk = self.disk_of(cell)
        if self.topology is not None and disk.node_id is not None:
            yield from self.topology.transfer(
                self.home_node, disk.node_id, self.geometry.chunk_size
            )
        yield from disk.access(
            "write", self.geometry.spare_lba(stripe, cell), self.geometry.chunk_size
        )

    @property
    def total_reads(self) -> int:
        return sum(d.stats.reads for d in self.disks)

    @property
    def total_writes(self) -> int:
        return sum(d.stats.writes for d in self.disks)
