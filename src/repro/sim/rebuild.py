"""Whole-disk rebuild: the classic recovery workload, via the same stack.

A full disk failure is the limiting case of partial stripe recovery —
every stripe loses its entire column.  Xiang et al. (the paper's [22])
showed that mixing chain directions cuts single-disk rebuild reads by up
to ~25% for RDP; our ``greedy`` scheme generalizes that idea to the 3DFT
codes, and this module measures it: rebuild all stripes of a failed disk
under any scheme/policy and report total reads and time.

This reuses :func:`repro.sim.run_reconstruction` with synthetic
full-column errors, so caching, SOR parallelism, and the disk models all
apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..codes.layout import CodeLayout
from ..core.scheme import generate_plan
from ..workloads.errors import PartialStripeError
from .reconstruction import ReconstructionReport, SimConfig, run_reconstruction
from .topology import TopologySpec

__all__ = ["RebuildSavings", "rebuild_errors", "run_disk_rebuild", "rebuild_read_savings"]


def rebuild_errors(
    layout: CodeLayout, failed_disk: int, stripes: int
) -> list[PartialStripeError]:
    """Full-column errors for every stripe of one failed disk."""
    if not 0 <= failed_disk < layout.num_disks:
        raise IndexError(
            f"disk {failed_disk} outside 0..{layout.num_disks - 1}"
        )
    if stripes < 1:
        raise ValueError(f"stripes must be >= 1, got {stripes}")
    return [
        PartialStripeError(
            time=0.0, stripe=s, disk=failed_disk, start_row=0, length=layout.rows
        )
        for s in range(stripes)
    ]


def run_disk_rebuild(
    layout: CodeLayout,
    failed_disk: int,
    stripes: int,
    config: SimConfig = SimConfig(),
    topology: TopologySpec | None = None,
) -> ReconstructionReport:
    """Simulate rebuilding every stripe of ``failed_disk``.

    ``topology`` rebuilds across a rack cluster instead of a single
    controller: disks attach to nodes, every chain read crosses the
    network to the controller node, and the report's ``cluster`` field
    carries the traffic snapshot.  Omitted (or a one-node spec), the run
    is the degenerate single-controller world.
    """
    if topology is not None:
        config = replace(config, topology=topology)
    errors = rebuild_errors(layout, failed_disk, stripes)
    return run_reconstruction(layout, errors, config)


@dataclass(frozen=True)
class RebuildSavings:
    """Per-stripe read counts of one rebuild scheme vs the typical one."""

    code: str
    p: int
    failed_disk: int
    typical_unique_reads: int
    scheme_unique_reads: int
    scheme: str

    @property
    def read_reduction(self) -> float:
        """Fraction of per-stripe reads saved vs all-horizontal rebuild."""
        if self.typical_unique_reads == 0:
            return 0.0
        return 1.0 - self.scheme_unique_reads / self.typical_unique_reads


def rebuild_read_savings(
    layout: CodeLayout, failed_disk: int = 0, scheme: str = "greedy"
) -> RebuildSavings:
    """The [22]-style accounting: unique chunks read to rebuild one stripe
    of a failed disk, smart scheme vs typical."""
    failed = list(layout.cells_on_disk(failed_disk))
    typical = generate_plan(layout, failed, "typical")
    smart = generate_plan(layout, failed, scheme)
    return RebuildSavings(
        code=layout.name,
        p=layout.p,
        failed_disk=failed_disk,
        typical_unique_reads=typical.unique_reads,
        scheme_unique_reads=smart.unique_reads,
        scheme=scheme,
    )
