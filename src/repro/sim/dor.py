"""Disk-Oriented Reconstruction (DOR) for partial stripe recovery.

The paper (§III-B, after Holland & Gibson) contrasts two parallel
reconstruction organizations: SOR (stripe-oriented — workers own stripes;
:func:`repro.sim.run_reconstruction`) and DOR (disk-oriented — one
process per surviving disk streams *all* the reads that disk owes the
recovery, while per-chunk XOR/write completions are driven by barriers).

DOR properties this model reproduces:

* each disk serves its recovery reads back-to-back (no idle gaps waiting
  for other disks), so disk utilization is higher than serial SOR;
* a chunk lives on exactly one disk, so repeated references to a shared
  chunk arrive at the same reader in order — the second reference hits
  the (shared) buffer cache if it survived, exactly the FBF scenario;
* spare writes contend with reads in the failed disk's queue.

The buffer cache is *shared* under DOR (one controller-side cache rather
than SOR's per-worker partitions).
"""

from __future__ import annotations

from typing import Sequence

from ..cache.registry import make_policy
from ..codes.layout import CodeLayout
from .array import ArrayGeometry
from .cache_sim import TimedBufferCache
from .controller import RAIDController
from .datapath import PayloadOracle, VerifyingDataPath
from .kernel import Environment, Event
from .reconstruction import ReconstructionReport, SimConfig, build_array

__all__ = ["run_reconstruction_dor"]


def run_reconstruction_dor(
    layout: CodeLayout,
    errors: Sequence,
    config: SimConfig = SimConfig(),
) -> ReconstructionReport:
    """Simulate DOR recovery of ``errors``; same report type as SOR.

    ``config.workers`` is ignored (parallelism is one process per disk);
    the whole ``cache_size`` backs one shared cache.
    """
    if not errors:
        raise ValueError("no errors to recover")
    errors = sorted(errors)
    env = Environment()
    geometry = ArrayGeometry(
        layout=layout, chunk_size=config.chunk_bytes, stripes=config.array_stripes
    )
    array = build_array(env, geometry, config)
    datapath = None
    if config.verify_payloads:
        datapath = VerifyingDataPath(
            PayloadOracle(layout, payload_size=config.payload_size,
                          seed=config.payload_seed)
        )
    controller = RAIDController(env, array, scheme_mode=config.scheme_mode,
                                xor_time_per_chunk=config.xor_time_per_chunk)
    policy = make_policy(config.policy, config.cache_blocks_total,
                         **config.policy_kwargs)
    cache = TimedBufferCache(env, policy, array, hit_time=config.hit_time)

    # ---- task graph -------------------------------------------------------
    # per-disk ordered read queues; per-assignment completion barriers.
    read_queues: list[list[tuple[int, tuple, int, Event]]] = [
        [] for _ in range(layout.num_disks)
    ]
    steps: list[tuple[int, object, list[Event]]] = []
    chunks_total = 0
    for error in errors:
        plan = controller.plan_for(error)
        for step in plan.steps:
            done_events: list[Event] = []
            for cell in step.reads:
                done = env.event()
                read_queues[geometry.disk_index(cell)].append(
                    (error.stripe, cell, plan.priority_of(cell), done)
                )
                done_events.append(done)
            steps.append((error.stripe, step, done_events))
            chunks_total += 1

    # ---- processes ----------------------------------------------------------
    def reader(disk_tasks):
        for stripe, cell, priority, done in disk_tasks:
            yield from cache.get_chunk(stripe, cell, priority)
            done.succeed()

    def rebuilder(stripe, step, done_events):
        if done_events:
            yield env.all_of(done_events)
        yield env.timeout(config.xor_time_per_chunk * len(step.reads))
        if datapath is not None:
            datapath.rebuild(stripe, step.detail)
        yield from array.write_spare_chunk(stripe, step.target)

    procs = [
        env.process(reader(queue), name=f"dor-reader-{d}")
        for d, queue in enumerate(read_queues)
        if queue
    ]
    procs.extend(
        env.process(rebuilder(stripe, s, evs), name="dor-rebuild")
        for stripe, s, evs in steps
    )
    env.run(env.all_of(procs))

    return ReconstructionReport(
        policy=config.policy,
        scheme_mode=config.scheme_mode,
        code=layout.name,
        p=layout.p,
        n_errors=len(errors),
        chunks_recovered=chunks_total,
        reconstruction_time=env.now,
        avg_response_time=cache.log.mean,
        max_response_time=cache.log.max,
        total_requests=cache.log.count,
        cache_hits=policy.stats.hits,
        cache_misses=policy.stats.misses,
        disk_reads=cache.log.disk_reads,
        disk_writes=array.total_writes,
        overhead_mean_s=controller.overhead.mean,
        overhead_total_s=controller.overhead.total,
        plan_cache_hits=controller.overhead.plan_cache_hits,
        payload_chunks_verified=datapath.chunks_verified if datapath else 0,
        payload_mismatches=datapath.mismatches if datapath else 0,
        disk_stats=tuple(
            (d.stats.busy_time, d.stats.queue_wait, d.stats.accesses)
            for d in array.disks
        ),
    )
