"""Minimal discrete-event simulation kernel.

This module is the engine underneath the storage simulator (our substitute
for DiskSim's event core).  It follows the SimPy process-based style:
simulation *processes* are Python generators that ``yield`` events; the
:class:`Environment` advances virtual time and resumes processes when the
events they wait on fire.

Only the features the storage stack needs are implemented, which keeps the
kernel small enough to test exhaustively:

* :class:`Event` — one-shot triggers carrying an optional value.
* :class:`Timeout` — an event scheduled at ``now + delay``.
* :class:`Process` — a running generator; itself an event that fires when
  the generator returns (value = the generator's return value).
* :class:`Resource` — a counted FIFO resource (disk queue slots, worker
  tokens).
* :class:`Container` — a capacity-bounded pool of continuous tokens
  (link bandwidth, node memory) with strictly FIFO waiters.
* :class:`AllOf` — barrier over several events (used for parallel reads).

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing tiebreaker), so a simulation run is a
pure function of its inputs.

Two hot-path mechanisms keep steady-state dispatch cheap without touching
that contract (the full contract is DESIGN.md §16):

* **Same-time fast lane** — immediate (``delay == 0``) schedules go to a
  FIFO deque instead of the heap.  Fast-lane entries always carry the
  current clock, and the dispatcher takes whichever of the two queue
  heads is smaller in the global ``(when, counter)`` order, so the event
  sequence is *identical* to the heap-only kernel while resource-grant
  and succeed chains stop paying ``heappush``/``heappop`` per hand-off.
* **Event/Timeout free-list pools** — a retired plain :class:`Event` or
  :class:`Timeout` whose only remaining reference is the dispatch loop
  itself is reset and reused for the next ``timeout()`` /
  ``schedule_now()`` instead of allocating.  Reuse is invisible: an
  event with any outside reference (a process variable, an
  :class:`AllOf` child list) is never recycled.  Pool hit rates are
  exported as ``kernel.pool.*`` obs counters when instrumentation is on.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable

from ..obs import runtime as _obs

#: Free-list size cap per pool: bounds memory after a retirement burst
#: while keeping steady-state chains (pool occupancy ~ in-flight events)
#: fully recycled.
_POOL_MAX = 1024

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Resource",
    "Request",
    "Container",
    "ContainerGet",
    "ContainerPut",
    "Store",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (re-triggering events, yielding non-events)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled with a value, waiting in the event queue), and *processed*
    (callbacks ran).  Waiting on an already-processed event resumes the
    waiter immediately at the current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "triggered", "processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = None
        self._ok: bool = True
        self.triggered = False
        self.processed = False

    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> bool:
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self.triggered = True
        self._value = value
        # Grant/hand-off chains call this once per event; when pooling is
        # on the environment is guaranteed to run the stock scheduler
        # (see Environment.__init__), so the fast-lane append is inlined.
        env = self.env
        if env._pooling:
            env._counter = counter = env._counter + 1
            env._fast.append((counter, self))
        else:
            env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exc`` raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._ok = False
        self._value = exc
        self.env._schedule(self)
        return self

    def _process(self) -> None:
        callbacks = self.callbacks
        self.callbacks = None
        self.processed = True
        if callbacks:
            # The overwhelmingly common case is a single waiting Process;
            # calling it directly skips the iterator machinery.
            if len(callbacks) == 1:
                callbacks[0](self)
            else:
                for cb in callbacks:
                    cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self.triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it triggers when the generator returns.
    The event value is the generator's return value (``StopIteration``
    payload).
    """

    __slots__ = ("_gen", "_target", "name", "_resume_cb")

    def __init__(self, env: "Environment", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"process requires a generator, got {gen!r}")
        super().__init__(env)
        self._gen = gen
        self._target: Event | None = None
        self.name = name or getattr(gen, "__name__", "process")
        # One bound method for the process's lifetime: creating it per
        # yield (every callbacks.append) is measurable on large sweeps,
        # and a single identity keeps interrupt's callbacks.remove exact.
        self._resume_cb = self._resume
        # Bootstrap: resume the generator as soon as the simulation runs.
        init = env._new_event()
        init.triggered = True
        init.callbacks.append(self._resume_cb)
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        interrupt_ev = self.env._new_event()
        interrupt_ev.triggered = True
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        # Detach from whatever the process was waiting on.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        interrupt_ev.callbacks.append(self._resume_cb)
        self.env._schedule(interrupt_ev)

    def _resume(self, event: Event) -> None:
        # Hot path: slot reads (_ok/_value) instead of the ok/value
        # properties — a property is a function call, and this method
        # runs once per dispatched event in a timed sweep.
        self._target = None
        gen = self._gen
        while True:
            try:
                if event._ok:
                    next_ev = gen.send(event._value)
                else:
                    next_ev = gen.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            try:
                if next_ev.processed:
                    # Already happened: resume synchronously with its value.
                    event = next_ev
                    continue
                next_ev.callbacks.append(self._resume_cb)
            except AttributeError:
                gen.close()
                raise SimulationError(
                    f"process yielded non-event {next_ev!r}"
                ) from None
            self._target = next_ev
            return


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource", "queued_at")

    def __init__(self, env: "Environment", resource: "Resource"):
        # Event.__init__ flattened: one frame instead of two on a
        # per-request hot path (requests are never pooled, so every
        # grant chain allocates one).
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self.triggered = False
        self.processed = False
        self.resource = resource
        #: virtual time the request entered the wait queue (obs only).
        self.queued_at: float | None = None

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with a FIFO wait queue.

    ``capacity`` concurrent holders are allowed; further requests queue in
    arrival order.  Disks with queue depth 1, worker-pool tokens, and bus
    slots are all modelled with this.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        # Grant-ordered; a dict (not a set) so any iteration is deterministic.
        self._holders: dict[Request, None] = {}
        self._queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> Request:
        req = Request(self.env, self)
        if len(self._holders) < self.capacity:
            self._holders[req] = None
            req.succeed(req)
            if _obs.ENABLED:
                _obs.counter("kernel.resource.granted_immediate").inc()
        else:
            self._queue.append(req)
            if _obs.ENABLED:
                _obs.counter("kernel.resource.queued").inc()
                req.queued_at = self.env.now
        return req

    def release(self, req: Request) -> None:
        holders = self._holders
        queue = self._queue
        if req in holders:
            del holders[req]
        else:
            # Releasing a queued (never-granted) request cancels it.
            try:
                queue.remove(req)
            except ValueError:
                raise SimulationError("release of a request not held or queued")
            return
        capacity = self.capacity
        while queue and len(holders) < capacity:
            nxt = queue.popleft()
            holders[nxt] = None
            nxt.succeed(nxt)
            if _obs.ENABLED and nxt.queued_at is not None:
                _obs.histogram("kernel.resource.wait_vtime").observe(
                    self.env.now - nxt.queued_at
                )


class ContainerGet(Event):
    """A pending withdrawal of ``amount`` tokens; fires when granted."""

    __slots__ = ("container", "amount", "queued_at")

    def __init__(self, env: "Environment", container: "Container", amount: float):
        # Event.__init__ flattened, as in Request: claims are per-transfer.
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self.triggered = False
        self.processed = False
        self.container = container
        self.amount = amount
        #: virtual time the claim entered the wait queue (obs only).
        self.queued_at: float | None = None

    def cancel(self) -> None:
        """Withdraw the claim: dequeue if waiting, refund if granted."""
        self.container._cancel(self)


class ContainerPut(Event):
    """A pending deposit of ``amount`` tokens; fires when accepted."""

    __slots__ = ("container", "amount", "queued_at")

    def __init__(self, env: "Environment", container: "Container", amount: float):
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self.triggered = False
        self.processed = False
        self.container = container
        self.amount = amount
        self.queued_at: float | None = None

    def cancel(self) -> None:
        """Withdraw the claim: dequeue if waiting, take back if accepted."""
        self.container._cancel(self)


class Container:
    """A pool of continuous tokens bounded by ``capacity``.

    Link bandwidth shares and node memory are modelled with this: a
    transfer ``get``s its rate tokens for the transfer's duration and
    ``put``s them back afterwards.  Both directions block when they
    cannot be satisfied and wait in strictly FIFO order — the head
    waiter is always served first, and a later, smaller claim never
    overtakes it.  That no-overtake rule is the determinism contract
    (DET003 spirit): the grant order is a pure function of the arrival
    order, never of the claim sizes in flight.

    All bookkeeping runs through ordinary :class:`Event` scheduling, so
    the sanitizer's ``SanitizedEnvironment`` (which re-dispatches
    stepwise and asserts order stability) observes and checks container
    grants like any other event.

    Interrupt safety: when a process waiting on a claim is interrupted,
    the claim stays queued (the kernel only detaches the waiter).  Call
    :meth:`ContainerGet.cancel` from the ``except Interrupt`` handler —
    it dequeues an ungranted claim, or refunds an already-granted one,
    so tokens are never leaked either way.
    """

    def __init__(self, env: "Environment", capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0.0 <= init <= capacity:
            raise ValueError(f"init must be in [0, {capacity}], got {init}")
        self.env = env
        self.capacity = float(capacity)
        self._level = float(init)
        self._getters: deque[ContainerGet] = deque()
        self._putters: deque[ContainerPut] = deque()

    @property
    def level(self) -> float:
        """Tokens currently available."""
        return self._level

    @property
    def queue_length(self) -> int:
        return len(self._getters) + len(self._putters)

    def get(self, amount: float) -> ContainerGet:
        """Claim ``amount`` tokens; the event fires once they are granted."""
        if amount <= 0:
            raise ValueError(f"get amount must be > 0, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"get of {amount} can never succeed (capacity {self.capacity})"
            )
        ev = ContainerGet(self.env, self, float(amount))
        if not self._getters and amount <= self._level:
            self._level -= amount
            ev.succeed(ev)
            self._drain()  # the freed headroom may unblock a putter
            if _obs.ENABLED:
                _obs.counter("kernel.container.granted_immediate").inc()
        else:
            self._getters.append(ev)
            if _obs.ENABLED:
                _obs.counter("kernel.container.queued").inc()
                ev.queued_at = self.env.now
        return ev

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount`` tokens; blocks while it would overflow."""
        if amount <= 0:
            raise ValueError(f"put amount must be > 0, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"put of {amount} can never succeed (capacity {self.capacity})"
            )
        ev = ContainerPut(self.env, self, float(amount))
        if not self._putters and self._level + amount <= self.capacity:
            self._level += amount
            ev.succeed(ev)
            self._drain()
        else:
            self._putters.append(ev)
            if _obs.ENABLED:
                _obs.counter("kernel.container.queued").inc()
                ev.queued_at = self.env.now
        return ev

    def _drain(self) -> None:
        """Serve queue heads (strict FIFO, no overtaking) while they fit.

        ``_level`` is mirrored in a local for the scan: ``succeed`` only
        *schedules* waiter callbacks (nothing re-enters the container
        before this method returns), so the write-back at the end is
        safe and the per-grant attribute churn disappears.
        """
        getters = self._getters
        putters = self._putters
        level = self._level
        capacity = self.capacity
        progressed = True
        while progressed:
            progressed = False
            while getters and getters[0].amount <= level:
                ev = getters.popleft()
                level -= ev.amount
                ev.succeed(ev)
                progressed = True
                if _obs.ENABLED and ev.queued_at is not None:
                    _obs.histogram("kernel.container.wait_vtime").observe(
                        self.env.now - ev.queued_at
                    )
            while putters and level + putters[0].amount <= capacity:
                ev = putters.popleft()
                level += ev.amount
                ev.succeed(ev)
                progressed = True
                if _obs.ENABLED and ev.queued_at is not None:
                    _obs.histogram("kernel.container.wait_vtime").observe(
                        self.env.now - ev.queued_at
                    )
        self._level = level

    def _cancel(self, ev: "ContainerGet | ContainerPut") -> None:
        if not ev.triggered:
            queue: deque = (
                self._getters if isinstance(ev, ContainerGet) else self._putters
            )
            try:
                queue.remove(ev)
            except ValueError:
                raise SimulationError("cancel of a claim not queued here")
            return
        # Already granted: undo the token movement and re-balance.
        if isinstance(ev, ContainerGet):
            self._level += ev.amount
        else:
            self._level -= ev.amount
        self._drain()


class Store:
    """An unbounded FIFO channel between processes.

    ``put(item)`` never blocks; ``get()`` returns an event that fires with
    the next item (immediately if one is queued, else when one arrives).
    Work queues — e.g. recovery jobs flowing from the error detector to
    the reconstruction workers — are modelled with this.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.env._new_event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


class AllOf(Event):
    """Barrier event: fires when every child event has fired.

    Value is the list of child values in the order given.  If any child
    fails, the barrier fails with the first failure.
    """

    __slots__ = ("_pending", "_events")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for ev in self._events:
            if not isinstance(ev, Event):
                raise TypeError(f"AllOf requires events, got {ev!r}")
            if not ev.processed:
                self._pending += 1
                ev.callbacks.append(self._child_done)
        if self._pending == 0:
            self.succeed([ev.value for ev in self._events])

    def _child_done(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Race event: fires when the *first* child fires.

    Value is ``(index, value)`` of the winner.  Later children are left
    running (no cancellation); a first-to-fail child fails the race.
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self._events):
            if not isinstance(ev, Event):
                raise TypeError(f"AnyOf requires events, got {ev!r}")
            if ev.processed:
                if ev.ok:
                    self.succeed((i, ev.value))
                else:
                    self.fail(ev.value)
                return
        for i, ev in enumerate(self._events):
            ev.callbacks.append(lambda e, i=i: self._child_done(i, e))

    def _child_done(self, index: int, ev: Event) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed((index, ev.value))
        else:
            self.fail(ev.value)


class Environment:
    """Simulation environment: the clock and the event queue.

    Two queues back the clock (DESIGN.md §16): the classic ``(when,
    counter, event)`` heap for future timestamps, and a FIFO deque — the
    *fast lane* — holding ``(counter, event)`` pairs for events scheduled
    at the current instant (``delay == 0``).  Because ``now`` only moves
    forward, every fast-lane entry is at ``when == now`` and the lane is
    counter-sorted by construction; comparing its head counter with the
    heap head reproduces the exact global ``(when, counter)`` order
    without a single heap operation for same-time chains.

    ``pooling=True`` (the default) additionally recycles retired plain
    :class:`Event`/:class:`Timeout` objects whose only live reference is
    the dispatch loop; pass ``pooling=False`` to force fresh allocations
    (bit-identical results either way — the A/B switch the kernel bench
    and the property suite exercise).
    """

    def __init__(self, initial_time: float = 0.0, *, pooling: bool = True):
        self.now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._fast: deque[tuple[int, Event]] = deque()
        self._counter = 0
        # The pooled timeout() path schedules inline (no _schedule call),
        # so a subclass with a custom scheduler must never see a pool hit.
        if pooling and type(self)._schedule is not Environment._schedule:
            pooling = False
        self._pooling = bool(pooling)
        self._event_pool: list[Event] = []
        self._timeout_pool: list[Timeout] = []

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._counter = counter = self._counter + 1
        if delay == 0.0:
            self._fast.append((counter, event))
        else:
            heappush(self._heap, (self.now + delay, counter, event))

    # -- factory helpers ------------------------------------------------
    def event(self) -> Event:
        return self._new_event()

    def _new_event(self) -> Event:
        """A pristine plain :class:`Event`, recycled from the pool if possible."""
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = None
            ev._ok = True
            ev.triggered = False
            ev.processed = False
            if _obs.ENABLED:
                _obs.counter("kernel.pool.event_hits").inc()
            return ev
        if _obs.ENABLED:
            _obs.counter("kernel.pool.event_misses").inc()
        return Event(self)

    def schedule_now(self, value: Any = None) -> Event:
        """An already-triggered event that fires at the current instant.

        The fast-lane idiom for "hand control back this timestep" —
        equivalent to ``timeout(0, value)`` but pool-recycled as a plain
        event (simlint PERF002 points constant ``timeout(0)`` calls here).
        """
        if self._pooling:
            # Pool + schedule inlined, same discipline as timeout(): a
            # pooling environment always runs the stock scheduler.
            pool = self._event_pool
            if pool:
                ev = pool.pop()
                ev.callbacks = []
                ev._ok = True
                ev.processed = False
                # ``triggered`` is already True: only dispatched (hence
                # triggered) events ever retire into the pool.
                if _obs.ENABLED:
                    _obs.counter("kernel.pool.event_hits").inc()
            else:
                if _obs.ENABLED:
                    _obs.counter("kernel.pool.event_misses").inc()
                ev = Event(self)
                ev.triggered = True
            ev._value = value
            self._counter = counter = self._counter + 1
            self._fast.append((counter, ev))
            return ev
        ev = self._new_event()
        ev.triggered = True
        ev._value = value
        self._schedule(ev)
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            t = pool.pop()
            t.callbacks = []
            t._value = value
            t._ok = True
            # ``triggered`` stays True across a timeout's whole pooled
            # lifecycle — set at first construction, required at retire.
            t.processed = False
            t.delay = delay
            # Scheduling inlined: this is the single hottest call in a
            # timed sweep, and __init__ guarantees pool hits never bypass
            # a subclass's custom _schedule (pooling is forced off).
            self._counter = counter = self._counter + 1
            if delay == 0.0:
                self._fast.append((counter, t))
            else:
                heappush(self._heap, (self.now + delay, counter, t))
            if _obs.ENABLED:
                _obs.counter("kernel.pool.timeout_hits").inc()
            return t
        if _obs.ENABLED:
            _obs.counter("kernel.pool.timeout_misses").inc()
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> "AnyOf":
        return AnyOf(self, events)

    # -- execution ------------------------------------------------------
    def _retire(self, event: Event) -> None:
        """Recycle ``event`` into its free list if it is provably unreferenced.

        Only *exact* ``Event``/``Timeout`` instances are pooled (never
        subclasses — a recycled ``Process`` or ``Request`` could alias
        live state), and only when the dispatch loop holds the sole
        remaining reference.  Seen from inside this helper that is a
        refcount of exactly 3: the caller's local, this parameter, and
        ``getrefcount``'s own argument.  Any event a process variable or
        an ``AllOf`` child list still points at stays untouched.
        """
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
        elif cls is Event:
            pool = self._event_pool
        else:
            return
        if len(pool) < _POOL_MAX and getrefcount(event) == 3:
            pool.append(event)

    def step(self) -> None:
        """Process the single next event (fast lane before heap when tied)."""
        fast = self._fast
        heap = self._heap
        if fast and (not heap or heap[0][0] > self.now or heap[0][1] > fast[0][0]):
            event = fast.popleft()[1]
        else:
            when, _, event = heappop(heap)
            self.now = when
        event._process()
        if self._pooling:
            self._retire(event)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        if self._fast:
            return self.now
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        * ``until=None`` — run to quiescence.
        * ``until=<number>`` — run events strictly before the deadline, then
          set ``now`` to the deadline.
        * ``until=<Event>`` — run until that event is *processed* and return
          its value (raising if it failed).

        The dispatch loops are inlined (no ``self.step()`` call) with the
        heap and ``heappop`` held in locals: the loop body runs once per
        simulated event, and on large DES sweeps the attribute lookups
        plus the extra frame were a measurable slice of wall time (see
        ``benchmarks/test_microbench.py::test_kernel_stepwise_throughput``
        for the stepwise baseline it is measured against).  Popped
        ``(when, counter, event)`` entries are unpacked once, in place —
        the common timeout path never re-wraps or re-examines them.
        Subclasses that override :meth:`step` (e.g. the checks module's
        ``SanitizedEnvironment``) keep the stepwise dispatch so their
        per-event hooks still run.  With observability enabled
        (:mod:`repro.obs`), dispatch goes through :meth:`_run_observed`
        — a stepwise loop wrapped in a ``kernel.run`` span that counts
        dispatched events; the obs check itself is a single module-flag
        test per ``run()`` call, so the disabled path stays on the
        inlined loop untouched.
        """
        if _obs.ENABLED:
            return self._run_observed(until)
        if type(self).step is not Environment.step:
            return self._run_stepwise(until)
        heap = self._heap
        fast = self._fast
        pop = heappop
        take_fast = fast.popleft
        pooling = self._pooling
        tpool = self._timeout_pool
        epool = self._event_pool
        refs = getrefcount
        length = len  # LOAD_FAST beats LOAD_GLOBAL twice per event
        pool_max = _POOL_MAX
        # ``now`` mirrors ``self.now`` in a local; only heap pops move it.
        # The recycle check is inlined (not `_retire`) because a bound
        # method call per event costs as much as the heap op it saves;
        # seen from here the sole-reference count is 2 (the loop local
        # plus ``getrefcount``'s argument).
        now = self.now
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if fast and (
                    not heap or heap[0][0] > now or heap[0][1] > fast[0][0]
                ):
                    event = take_fast()[1]
                else:
                    if not heap:
                        raise SimulationError(
                            "event queue drained before target event fired "
                            "(deadlock?)"
                        )
                    when, _, event = pop(heap)
                    self.now = now = when
                # _process() inlined (as in the other two loops below):
                # the method call per event is a measurable slice of a
                # dispatch-bound sweep.  Semantics are identical.
                cbs = event.callbacks
                event.callbacks = None
                event.processed = True
                if cbs:
                    if length(cbs) == 1:
                        cbs[0](event)
                    else:
                        for cb in cbs:
                            cb(event)
                if pooling:
                    cls = event.__class__
                    if cls is Timeout:
                        if length(tpool) < pool_max and refs(event) == 2:
                            tpool.append(event)
                    elif cls is Event:
                        if length(epool) < pool_max and refs(event) == 2:
                            epool.append(event)
            if not target.ok:
                raise target.value
            return target.value
        if until is None:
            while fast or heap:
                if fast and (
                    not heap or heap[0][0] > now or heap[0][1] > fast[0][0]
                ):
                    event = take_fast()[1]
                else:
                    when, _, event = pop(heap)
                    self.now = now = when
                cbs = event.callbacks
                event.callbacks = None
                event.processed = True
                if cbs:
                    if length(cbs) == 1:
                        cbs[0](event)
                    else:
                        for cb in cbs:
                            cb(event)
                if pooling:
                    cls = event.__class__
                    if cls is Timeout:
                        if length(tpool) < pool_max and refs(event) == 2:
                            tpool.append(event)
                    elif cls is Event:
                        if length(epool) < pool_max and refs(event) == 2:
                            epool.append(event)
            return None
        deadline = float(until)
        if deadline < now:
            raise ValueError(f"deadline {deadline} is in the past (now={now})")
        while True:
            if fast and (
                not heap or heap[0][0] > now or heap[0][1] > fast[0][0]
            ):
                event = take_fast()[1]
            elif heap and heap[0][0] <= deadline:
                when, _, event = pop(heap)
                self.now = now = when
            else:
                break
            cbs = event.callbacks
            event.callbacks = None
            event.processed = True
            if cbs:
                if len(cbs) == 1:
                    cbs[0](event)
                else:
                    for cb in cbs:
                        cb(event)
            if pooling:
                cls = event.__class__
                if cls is Timeout:
                    if length(tpool) < pool_max and refs(event) == 2:
                        tpool.append(event)
                elif cls is Event:
                    if length(epool) < pool_max and refs(event) == 2:
                        epool.append(event)
        self.now = deadline
        return None

    def _run_observed(self, until: float | Event | None = None) -> Any:
        """:meth:`run` with obs recording — same semantics, stepwise dispatch.

        Dispatch stays ``self.step()`` so sanitizer/subclass hooks keep
        running; the count is kept in a local and published once, after
        the loop, together with the ``kernel.run`` span and the final
        virtual clock.
        """
        dispatched = 0
        with _obs.span("kernel.run") as sp:
            try:
                if isinstance(until, Event):
                    target = until
                    while not target.processed:
                        if not self._heap and not self._fast:
                            raise SimulationError(
                                "event queue drained before target event fired "
                                "(deadlock?)"
                            )
                        self.step()
                        dispatched += 1
                    if not target.ok:
                        raise target.value
                    return target.value
                if until is None:
                    while self._heap or self._fast:
                        self.step()
                        dispatched += 1
                    return None
                deadline = float(until)
                if deadline < self.now:
                    raise ValueError(
                        f"deadline {deadline} is in the past (now={self.now})"
                    )
                while self._fast or (
                    self._heap and self._heap[0][0] <= deadline
                ):
                    self.step()
                    dispatched += 1
                self.now = deadline
                return None
            finally:
                sp["events"] = dispatched
                _obs.counter("kernel.runs").inc()
                _obs.counter("kernel.events_dispatched").inc(dispatched)
                _obs.gauge("kernel.virtual_time").set(self.now)

    def _run_stepwise(self, until: float | Event | None = None) -> Any:
        """:meth:`run` via ``self.step()`` — honours overridden dispatch."""
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if not self._heap and not self._fast:
                    raise SimulationError(
                        "event queue drained before target event fired (deadlock?)"
                    )
                self.step()
            if not target.ok:
                raise target.value
            return target.value
        if until is None:
            while self._heap or self._fast:
                self.step()
            return None
        deadline = float(until)
        if deadline < self.now:
            raise ValueError(f"deadline {deadline} is in the past (now={self.now})")
        while self._fast or (self._heap and self._heap[0][0] <= deadline):
            self.step()
        self.now = deadline
        return None
