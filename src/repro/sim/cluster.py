"""The cross-rack recovery scenario: EC vs replication on a rack cluster.

Rashmi et al.'s Facebook-warehouse study (PAPERS.md) measured that
erasure-coded recovery moves an order of magnitude more cross-rack bytes
than replication: repairing one lost chunk reads *k* surviving fragments
over the oversubscribed rack uplinks where replication reads one replica.
This module stages exactly that comparison on the rack-aware topology of
:mod:`repro.sim.topology`, with the paper's partial-stripe errors and
FBF/LRU/ARC caching on the EC side:

* **EC mode** — the full reconstruction stack
  (:func:`repro.engine.timed.run_timed_replay`) with a cluster topology
  threaded through the array: every chain read crosses the network from
  the disk's node to the controller node, charging nic and uplink
  bandwidth.
* **Replication mode** — the same failures repaired by copying one
  replica per lost chunk from a node in the *next* rack (copyset-style
  placement keeps replicas off the primary's rack), through the same
  links and disks, with no decode reads and no cache.

Both modes can **limplock** a node (fail-slow: disks and nic run
``limplock_factor`` slower while heartbeats keep answering) to show the
degraded-mode tail that p99 reporting exists for.

This module sits a layer above :mod:`repro.sim` in the import DAG
(``sim.cluster`` is layer 2, like the engine) because the EC path drives
the engine's timed replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..codes import make_code
from ..core.scheme import SchemeMode
from ..obs import runtime as _obs
from ..obs.metrics import Histogram
from ..utils import parse_size
from ..workloads.errors import ErrorTraceConfig, PartialStripeError, generate_errors
from .array import ArrayGeometry, DiskArray
from .disk import FixedLatencyModel
from .kernel import Environment
from .reconstruction import ClusterStats, SimConfig
from .topology import HeartbeatMonitor, TopologySpec, build_topology

__all__ = ["ClusterSpec", "ClusterReport", "run_cluster_recovery"]


@dataclass(frozen=True)
class ClusterSpec:
    """One cross-rack recovery experiment (hashable, cache-key friendly)."""

    #: "ec" repairs by decode (the paper's stack); "rep" copies replicas.
    redundancy: str = "ec"
    code: str = "tip"
    p: int = 7
    policy: str = "fbf"
    cache_size: int | str = "64MB"
    scheme_mode: SchemeMode = "fbf"
    n_errors: int = 48
    seed: int = 42
    workers: int = 8
    racks: int = 3
    nodes_per_rack: int = 3
    #: 1 MB chunks (not the in-array 32 KB) — the distributed-storage
    #: regime where network bytes, not disk seeks, dominate recovery.
    chunk_size: int | str = "1MB"
    array_stripes: int = 100_000
    nic_bandwidth: float = 1.25e9
    uplink_bandwidth: float = 1.25e8
    limplock: bool = False
    limplock_factor: float = 8.0
    heartbeat_period: float = 0.1
    disk_latency: float = 0.010
    hit_time: float = 0.0005

    def __post_init__(self) -> None:
        if self.redundancy not in ("ec", "rep"):
            raise ValueError(f"redundancy must be 'ec' or 'rep', got {self.redundancy!r}")
        if self.racks < 1 or self.nodes_per_rack < 1:
            raise ValueError("racks and nodes_per_rack must be >= 1")
        if self.limplock and self.num_nodes < 2:
            raise ValueError("limplock needs at least two nodes")

    @property
    def num_nodes(self) -> int:
        return self.racks * self.nodes_per_rack

    @property
    def chunk_bytes(self) -> int:
        return parse_size(self.chunk_size)

    def topology_spec(self) -> TopologySpec:
        """The cluster shape both modes run on (limplock on node 1)."""
        return TopologySpec(
            racks=self.racks,
            nodes_per_rack=self.nodes_per_rack,
            controller_node=0,
            nic_bandwidth=self.nic_bandwidth,
            uplink_bandwidth=self.uplink_bandwidth,
            limplock_node=1 if self.limplock else None,
            limplock_factor=self.limplock_factor if self.limplock else 1.0,
            heartbeat_period=self.heartbeat_period,
        )

    def errors(self) -> list[PartialStripeError]:
        layout = make_code(self.code, self.p)
        return generate_errors(
            layout,
            ErrorTraceConfig(
                n_errors=self.n_errors,
                array_stripes=self.array_stripes,
                seed=self.seed,
            ),
        )


@dataclass(frozen=True)
class ClusterReport:
    """What the cluster bench rows and BENCH_cluster.json read off a run."""

    redundancy: str
    policy: str
    code: str
    p: int
    n_errors: int
    chunks_recovered: int
    recovery_time: float
    avg_response_time: float
    p99_response_time: float
    hit_ratio: float
    disk_reads: int
    disk_writes: int
    cross_rack_bytes: int
    intra_rack_bytes: int
    #: busiest link and its utilization over the run — the measured
    #: recovery bottleneck.
    bottleneck: str
    bottleneck_utilization: float
    limplock: bool
    #: nodes the heartbeat RTT outlier test flags as fail-slow.
    limplock_suspects: tuple[int, ...] = ()

    @property
    def cross_rack_mb(self) -> float:
        return self.cross_rack_bytes / 1e6


def _damaged_cells(error: PartialStripeError) -> list[tuple[int, int]]:
    return [
        (row, error.disk)
        for row in range(error.start_row, error.start_row + error.length)
    ]


def _run_ec(spec: ClusterSpec) -> ClusterReport:
    """EC recovery: the paper's cached reconstruction over the topology."""
    from ..engine.backends import XORBackend
    from ..engine.timed import run_timed_replay

    layout = make_code(spec.code, spec.p)
    config = SimConfig(
        policy=spec.policy,
        cache_size=spec.cache_size,
        chunk_size=spec.chunk_size,
        scheme_mode=spec.scheme_mode,
        workers=spec.workers,
        hit_time=spec.hit_time,
        disk_latency=spec.disk_latency,
        array_stripes=spec.array_stripes,
        topology=spec.topology_spec(),
        response_quantiles=True,
    )
    report = run_timed_replay(
        XORBackend(layout, spec.scheme_mode), spec.errors(), config
    )
    stats = report.cluster
    assert stats is not None  # topology was configured
    name, util = ("", 0.0)
    if stats.link_utilization:
        name, util = max(stats.link_utilization, key=lambda nu: nu[1])
    return ClusterReport(
        redundancy="ec",
        policy=report.policy,
        code=report.code,
        p=report.p,
        n_errors=report.n_errors,
        chunks_recovered=report.chunks_recovered,
        recovery_time=report.reconstruction_time,
        avg_response_time=report.avg_response_time,
        p99_response_time=report.p99_response_time or 0.0,
        hit_ratio=report.hit_ratio,
        disk_reads=report.disk_reads,
        disk_writes=report.disk_writes,
        cross_rack_bytes=stats.cross_rack_bytes,
        intra_rack_bytes=stats.intra_rack_bytes,
        bottleneck=name,
        bottleneck_utilization=util,
        limplock=spec.limplock,
        limplock_suspects=stats.limplock_suspects,
    )


def _replica_repair(
    env: Environment,
    topology,
    array: DiskArray,
    errors: list[PartialStripeError],
    histogram: Histogram,
    counters: dict[str, int],
) -> Generator:
    """Worker process: repair each lost chunk from its next-rack replica.

    Copyset-style placement: the replica of a chunk on node *n* lives on
    the node one rack over in the same position, so every replica read is
    a cross-rack transfer — the quantity replication is thrifty with and
    EC decode multiplies by the chain length.
    """
    geometry = array.geometry
    n_nodes = len(topology.nodes)
    per_rack = len(topology.racks[0].nodes)
    home = array.home_node
    for error in errors:
        for cell in _damaged_cells(error):
            start = env.now
            primary = array.disk_of(cell)
            replica_node = (primary.node_id + per_rack) % n_nodes
            # the replica disk: same platter position, one rack over
            rdisks = topology.nodes[replica_node].disks
            rdisk = rdisks[0] if rdisks else primary
            yield from rdisk.access(
                "read", geometry.lba(error.stripe, cell), geometry.chunk_size
            )
            yield from topology.transfer(
                replica_node, home, geometry.chunk_size
            )
            histogram.observe(env.now - start)
            counters["disk_reads"] += 1
            yield from array.write_spare_chunk(error.stripe, cell)
            counters["chunks"] += 1
            if _obs.ENABLED:
                _obs.counter("cluster.replication.chunks_repaired").inc()


def _run_rep(spec: ClusterSpec) -> ClusterReport:
    """Replication recovery: one next-rack replica read per lost chunk."""
    layout = make_code(spec.code, spec.p)
    env = Environment()
    topo_spec = spec.topology_spec()
    topology = build_topology(env, topo_spec)
    heartbeats = None
    if topo_spec.heartbeat_period > 0:
        heartbeats = HeartbeatMonitor(
            topology,
            master=topo_spec.controller_node,
            period=topo_spec.heartbeat_period,
            miss_threshold=topo_spec.heartbeat_miss_threshold,
        )
        heartbeats.start()
    geometry = ArrayGeometry(
        layout, chunk_size=spec.chunk_bytes, stripes=spec.array_stripes
    )
    array = DiskArray(
        env, geometry,
        disk_model_factory=lambda i: FixedLatencyModel(spec.disk_latency),
        topology=topology, home_node=topo_spec.controller_node,
    )
    histogram = Histogram("cluster.replication.response_time")
    counters = {"disk_reads": 0, "chunks": 0}
    errors = spec.errors()
    workers = min(spec.workers, len(errors))
    procs = [
        env.process(
            _replica_repair(
                env, topology, array, errors[w::workers], histogram, counters
            ),
            name=f"rep-worker-{w}",
        )
        for w in range(workers)
    ]
    env.run(env.all_of(procs))
    recovery_time = env.now
    stats = ClusterStats(
        racks=len(topology.racks),
        nodes=len(topology.nodes),
        transfers=topology.transfers,
        cross_rack_bytes=topology.cross_rack_bytes,
        intra_rack_bytes=topology.intra_rack_bytes,
        link_utilization=topology.link_utilization(recovery_time),
        heartbeat_rtt_max=(
            tuple(sorted(heartbeats.rtt_max.items())) if heartbeats else ()
        ),
        limplock_suspects=topology.limplock_suspects(),
    )
    name, util = ("", 0.0)
    if stats.link_utilization:
        name, util = max(stats.link_utilization, key=lambda nu: nu[1])
    return ClusterReport(
        redundancy="rep",
        policy="rep",
        code=spec.code,
        p=spec.p,
        n_errors=len(errors),
        chunks_recovered=counters["chunks"],
        recovery_time=recovery_time,
        avg_response_time=histogram.mean,
        p99_response_time=histogram.quantile(0.99) if histogram.count else 0.0,
        hit_ratio=0.0,
        disk_reads=counters["disk_reads"],
        disk_writes=array.total_writes,
        cross_rack_bytes=stats.cross_rack_bytes,
        intra_rack_bytes=stats.intra_rack_bytes,
        bottleneck=name,
        bottleneck_utilization=util,
        limplock=spec.limplock,
        limplock_suspects=stats.limplock_suspects,
    )


def run_cluster_recovery(spec: ClusterSpec = ClusterSpec()) -> ClusterReport:
    """Run one cross-rack recovery scenario and report its traffic.

    Deterministic: same spec → identical report (all virtual-time).
    """
    if spec.redundancy == "rep":
        return _run_rep(spec)
    return _run_ec(spec)
