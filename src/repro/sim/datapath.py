"""Optional payload-carrying data path for the event simulator.

The timing simulation treats chunks as opaque; this module adds real
bytes, making every simulated recovery *self-checking*:

* :class:`PayloadOracle` provides deterministic ground-truth payloads for
  any ``(stripe, cell)`` — stripe data is derived from the stripe id and a
  seed, encoded once with the stripe's layout, and cached (bounded LRU).
* :class:`VerifyingDataPath` executes a chain assignment the way the
  controller's XOR engine would — fetch the survivors' payloads, XOR them
  — and compares the rebuilt chunk against the oracle.

Corruption injection (silent data corruption on a read, §II-C's first
error class) flips bits in a fetched payload; the resulting mismatch is
*recorded*, modelling the scrubbing check a verifying controller performs
on recovered data before writing it to the spare area.

Payload size is deliberately decoupled from the simulated chunk size
(timing uses 32 KB; verification uses a small payload) so the data path
adds negligible runtime to benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..codes.encoder import Encoder
from ..codes.layout import Cell, CodeLayout
from ..core.scheme import ChainAssignment

__all__ = ["PayloadOracle", "VerifyingDataPath"]


class PayloadOracle:
    """Deterministic ground truth for every chunk in the array.

    Stripe ``s``'s data cells are filled from ``default_rng(seed + s)``
    and encoded; payload lookups are pure functions of (layout, seed,
    stripe, cell).  Encoded stripes are cached with a bounded LRU so
    arbitrarily large arrays stay in constant memory.
    """

    def __init__(
        self,
        layout: CodeLayout,
        payload_size: int = 64,
        seed: int = 0,
        max_cached_stripes: int = 256,
    ):
        if payload_size < 1:
            raise ValueError(f"payload_size must be >= 1, got {payload_size}")
        if max_cached_stripes < 1:
            raise ValueError(
                f"max_cached_stripes must be >= 1, got {max_cached_stripes}"
            )
        self.layout = layout
        self.payload_size = payload_size
        self.seed = seed
        self.max_cached_stripes = max_cached_stripes
        self._encoder = Encoder(layout)
        self._stripes: OrderedDict[int, np.ndarray] = OrderedDict()

    def _stripe(self, stripe: int) -> np.ndarray:
        cached = self._stripes.get(stripe)
        if cached is not None:
            self._stripes.move_to_end(stripe)
            return cached
        rng = np.random.default_rng(self.seed + stripe)
        payload = self._encoder.random_stripe(self.payload_size, rng)
        self._stripes[stripe] = payload
        if len(self._stripes) > self.max_cached_stripes:
            self._stripes.popitem(last=False)
        return payload

    def chunk(self, stripe: int, cell: Cell) -> np.ndarray:
        """The true payload of one chunk (a copy; caller may mutate)."""
        r, c = cell
        return self._stripe(stripe)[r, c].copy()


@dataclass
class VerifyingDataPath:
    """XOR engine + scrubbing check over a :class:`PayloadOracle`."""

    oracle: PayloadOracle
    chunks_verified: int = 0
    mismatches: int = 0
    mismatch_log: list[tuple[int, Cell]] = field(default_factory=list)
    #: survivor reads per disk column — the payload path's side of the
    #: traffic ledger, foldable onto cluster nodes via reads_per_node().
    reads_per_disk: dict[int, int] = field(default_factory=dict)
    _corrupted: set[tuple[int, Cell]] = field(default_factory=set)

    def inject_corruption(self, stripe: int, cell: Cell) -> None:
        """Mark a chunk as silently corrupted: reads of it return flipped bits."""
        self._corrupted.add((stripe, cell))

    def clear_corruption(self) -> None:
        self._corrupted.clear()

    def fetch(self, stripe: int, cell: Cell) -> np.ndarray:
        """A chunk as the disk returns it (possibly silently corrupted)."""
        payload = self.oracle.chunk(stripe, cell)
        _, disk = cell
        self.reads_per_disk[disk] = self.reads_per_disk.get(disk, 0) + 1
        if (stripe, cell) in self._corrupted:
            payload ^= 0xFF
        return payload

    def reads_per_node(self, placement) -> dict[int, int]:
        """Fold the per-disk survivor reads through a disk->node placement.

        With the same placement the topology-backed array uses (default
        ``disk % num_nodes``), this attributes the verified data path's
        read traffic to cluster nodes — the payload-level counterpart of
        :class:`~repro.sim.topology.ClusterTopology` byte accounting.
        """
        out: dict[int, int] = {}
        for disk, count in self.reads_per_disk.items():
            node = placement(disk)
            out[node] = out.get(node, 0) + count
        return out

    def rebuild(self, stripe: int, assignment: ChainAssignment) -> np.ndarray:
        """XOR the chain's surviving chunks to rebuild the failed one,
        then scrub-check the result against ground truth."""
        out = np.zeros(self.oracle.payload_size, dtype=np.uint8)
        for cell in assignment.chain.others(assignment.failed_cell):
            out ^= self.fetch(stripe, cell)
        self.chunks_verified += 1
        expected = self.oracle.chunk(stripe, assignment.failed_cell)
        if not np.array_equal(out, expected):
            self.mismatches += 1
            self.mismatch_log.append((stripe, assignment.failed_cell))
        return out
