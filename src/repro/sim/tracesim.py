"""Fast trace-driven cache simulation (no event clock).

Hit ratio and disk-read counts (paper Figures 8 and 9) depend only on the
request *sequence*, not on timing, so this module replays recovery
request streams directly against a replacement policy — orders of
magnitude faster than the full event simulation, which is reserved for
the timing metrics (Figures 10 and 11).

Worker partitioning matches the paper's SOR extension: errors are dealt
round-robin to ``workers`` policies, each sized ``capacity // workers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..cache.base import CachePolicy
from ..cache.registry import make_policy
from ..codes.layout import CodeLayout
from ..core.priorities import PriorityDictionary
from ..core.scheme import RecoveryPlan, SchemeMode, generate_plan

from ..workloads.errors import PartialStripeError

__all__ = ["TraceSimResult", "simulate_cache_trace", "PlanCache"]


class PlanCache:
    """Shape-keyed memo of recovery plans + priorities (shared by runs).

    One instance per ``(layout, scheme_mode)`` is meant to be *shared*
    across every run that uses that pair — all cache sizes and policies
    of a sweep group, and all trace replays of one engine worker — since
    plans are deterministic functions of the error shape.  ``max_entries``
    bounds the memo (FIFO eviction of the oldest shape) for long-lived
    sharing; the distinct-shape count is ``O(disks x rows^2)``, so the
    default is unbounded.
    """

    def __init__(
        self,
        layout: CodeLayout,
        scheme_mode: SchemeMode,
        max_entries: int | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.layout = layout
        self.scheme_mode: SchemeMode = scheme_mode
        self.max_entries = max_entries
        self._memo: dict[tuple[int, int, int], tuple[RecoveryPlan, PriorityDictionary]] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._memo)

    def get(
        self, error: PartialStripeError
    ) -> tuple[RecoveryPlan, PriorityDictionary]:
        key = error.shape
        hit = self._memo.get(key)
        if hit is None:
            self._misses += 1
            plan = generate_plan(
                self.layout, error.cells(self.layout), self.scheme_mode
            )
            hit = (plan, PriorityDictionary(plan))
            if self.max_entries is not None and len(self._memo) >= self.max_entries:
                # FIFO: drop the oldest shape (dict preserves insertion
                # order, so eviction is deterministic).
                del self._memo[next(iter(self._memo))]
            self._memo[key] = hit
        else:
            self._hits += 1
        return hit

    def stats(self) -> dict[str, int]:
        """Lifetime counters: plan-memo hits/misses and live entries."""
        return {"hits": self._hits, "misses": self._misses, "entries": len(self._memo)}


@dataclass
class TraceSimResult:
    """Counters from one trace replay."""

    policy: str
    scheme_mode: str
    code: str
    p: int
    capacity_blocks: int
    workers: int
    n_errors: int
    requests: int
    hits: int
    disk_reads: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def simulate_cache_trace(
    layout: CodeLayout,
    errors: Sequence[PartialStripeError],
    policy: str = "fbf",
    capacity_blocks: int = 64,
    scheme_mode: SchemeMode = "fbf",
    workers: int = 1,
    policy_factory: Callable[[int], CachePolicy] | None = None,
    plan_cache: PlanCache | None = None,
    policy_kwargs: dict | None = None,
    hint: str = "priority",
    sanitize: bool = False,
) -> TraceSimResult:
    """Replay the recovery request stream of ``errors`` through a cache.

    ``capacity_blocks`` is the *total* cache in chunks; with ``workers > 1``
    it is partitioned evenly (integer division, like the paper's per-process
    cache slices).  ``hint`` selects what accompanies each request:
    ``"priority"`` (the paper's 1..3 value) or ``"share"`` (the raw chain
    share count, for many-queue FBF variants).  ``sanitize`` wraps every
    policy in :class:`repro.checks.SimSanitizer`, which raises
    :class:`repro.checks.InvariantViolation` the moment a cache invariant
    (FBF single-residency, demotion order, capacity accounting) breaks.
    """
    if hint not in ("priority", "share"):
        raise ValueError(f"hint must be 'priority' or 'share', got {hint!r}")
    if capacity_blocks < 0:
        raise ValueError(f"capacity_blocks must be >= 0, got {capacity_blocks}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if plan_cache is None:
        plan_cache = PlanCache(layout, scheme_mode)
    elif plan_cache.layout is not layout or plan_cache.scheme_mode != scheme_mode:
        raise ValueError("plan_cache was built for a different layout/scheme")

    errors = sorted(errors)
    workers = min(workers, len(errors)) or 1
    per_worker = capacity_blocks // workers
    kwargs = policy_kwargs or {}
    if policy_factory is not None:
        policies = [policy_factory(per_worker) for _ in range(workers)]
    else:
        policies = [make_policy(policy, per_worker, **kwargs) for _ in range(workers)]
    if sanitize:
        # Imported here: repro.checks imports the kernel, which would cycle
        # through repro.sim at module import time.
        from ..checks.sanitizer import SimSanitizer

        policies = [SimSanitizer(p) for p in policies]

    for i, error in enumerate(errors):
        cache = policies[i % workers]
        plan, priorities = plan_cache.get(error)
        stripe = error.stripe
        if hint == "priority":
            lookup = priorities.lookup
        else:
            lookup = lambda cell: max(priorities.share_count(cell), 1)
        for cell in plan.request_sequence:
            cache.request((stripe, cell), priority=lookup(cell))

    hits = sum(p.stats.hits for p in policies)
    misses = sum(p.stats.misses for p in policies)
    return TraceSimResult(
        policy=policy if policy_factory is None else getattr(policies[0], "name", "custom"),
        scheme_mode=scheme_mode,
        code=layout.name,
        p=layout.p,
        capacity_blocks=capacity_blocks,
        workers=workers,
        n_errors=len(errors),
        requests=hits + misses,
        hits=hits,
        disk_reads=misses,
    )
