"""Layout-flavoured adapter over the unified trace replay.

The actual replay implementation lives in :mod:`repro.engine.tracesim`
(one implementation for every code backend); this module keeps the
original XOR-world signatures — ``simulate_cache_trace(layout, errors,
...)`` and the ``(plan, priorities)``-returning :class:`PlanCache` —
delegating everything to an :class:`~repro.engine.backends.XORBackend`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from ..cache.base import CachePolicy
from ..codes.layout import CodeLayout
from ..core.priorities import PriorityDictionary
from ..core.scheme import RecoveryPlan, SchemeMode
from ..engine.backends import XORBackend
from ..engine.tracesim import PlanCache as EnginePlanCache
from ..engine.tracesim import TraceSimResult, simulate_trace

if TYPE_CHECKING:  # annotation-only: sim stays level with workloads' consumers
    from ..workloads.errors import PartialStripeError

__all__ = ["TraceSimResult", "simulate_cache_trace", "PlanCache"]


class PlanCache:
    """Shape-keyed memo of recovery plans + priorities (shared by runs).

    Compatibility wrapper over :class:`repro.engine.tracesim.PlanCache`
    keeping the XOR-world :meth:`get` contract — a ``(RecoveryPlan,
    PriorityDictionary)`` pair per error shape.  See the engine class for
    sharing and eviction semantics.
    """

    def __init__(
        self,
        layout: CodeLayout,
        scheme_mode: SchemeMode,
        max_entries: int | None = None,
    ):
        self.layout = layout
        self.scheme_mode: SchemeMode = scheme_mode
        self.max_entries = max_entries
        self._engine = EnginePlanCache(
            XORBackend(layout, scheme_mode), max_entries=max_entries
        )

    def __len__(self) -> int:
        return len(self._engine)

    def get(
        self, error: PartialStripeError
    ) -> tuple[RecoveryPlan, PriorityDictionary]:
        # The backend stores the native (plan, priorities) pair as the
        # engine plan's source, so repeated gets return the same objects.
        return self._engine.get(error).source

    def stats(self) -> dict[str, int]:
        """Lifetime counters: plan-memo hits/misses and live entries."""
        return self._engine.stats()


def simulate_cache_trace(
    layout: CodeLayout,
    errors: Sequence[PartialStripeError],
    policy: str = "fbf",
    capacity_blocks: int = 64,
    scheme_mode: SchemeMode = "fbf",
    workers: int = 1,
    policy_factory: Callable[[int], CachePolicy] | None = None,
    plan_cache: PlanCache | None = None,
    policy_kwargs: dict | None = None,
    hint: str = "priority",
    sanitize: bool = False,
) -> TraceSimResult:
    """Replay ``errors`` on an XOR layout; see :func:`repro.engine.
    tracesim.simulate_trace` for the parameter semantics."""
    if plan_cache is None:
        engine_cache = None
        backend = XORBackend(layout, scheme_mode)
    elif plan_cache.layout is not layout or plan_cache.scheme_mode != scheme_mode:
        raise ValueError("plan_cache was built for a different layout/scheme")
    else:
        engine_cache = plan_cache._engine
        backend = engine_cache.backend
    return simulate_trace(
        backend,
        errors,
        policy=policy,
        capacity_blocks=capacity_blocks,
        workers=workers,
        policy_factory=policy_factory,
        plan_cache=engine_cache,
        policy_kwargs=policy_kwargs,
        hint=hint,
        sanitize=sanitize,
    )
