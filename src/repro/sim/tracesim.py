"""Fast trace-driven cache simulation (no event clock).

Hit ratio and disk-read counts (paper Figures 8 and 9) depend only on the
request *sequence*, not on timing, so this module replays recovery
request streams directly against a replacement policy — orders of
magnitude faster than the full event simulation, which is reserved for
the timing metrics (Figures 10 and 11).

Worker partitioning matches the paper's SOR extension: errors are dealt
round-robin to ``workers`` policies, each sized ``capacity // workers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..cache.base import CachePolicy
from ..cache.registry import make_policy
from ..codes.layout import CodeLayout
from ..core.priorities import PriorityDictionary
from ..core.scheme import RecoveryPlan, SchemeMode, generate_plan

from ..workloads.errors import PartialStripeError

__all__ = ["TraceSimResult", "simulate_cache_trace", "PlanCache"]


class PlanCache:
    """Shape-keyed memo of recovery plans + priorities (shared by runs)."""

    def __init__(self, layout: CodeLayout, scheme_mode: SchemeMode):
        self.layout = layout
        self.scheme_mode: SchemeMode = scheme_mode
        self._memo: dict[tuple[int, int, int], tuple[RecoveryPlan, PriorityDictionary]] = {}

    def get(
        self, error: PartialStripeError
    ) -> tuple[RecoveryPlan, PriorityDictionary]:
        key = error.shape
        hit = self._memo.get(key)
        if hit is None:
            plan = generate_plan(
                self.layout, error.cells(self.layout), self.scheme_mode
            )
            hit = (plan, PriorityDictionary(plan))
            self._memo[key] = hit
        return hit


@dataclass
class TraceSimResult:
    """Counters from one trace replay."""

    policy: str
    scheme_mode: str
    code: str
    p: int
    capacity_blocks: int
    workers: int
    n_errors: int
    requests: int
    hits: int
    disk_reads: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def simulate_cache_trace(
    layout: CodeLayout,
    errors: Sequence[PartialStripeError],
    policy: str = "fbf",
    capacity_blocks: int = 64,
    scheme_mode: SchemeMode = "fbf",
    workers: int = 1,
    policy_factory: Callable[[int], CachePolicy] | None = None,
    plan_cache: PlanCache | None = None,
    policy_kwargs: dict | None = None,
    hint: str = "priority",
    sanitize: bool = False,
) -> TraceSimResult:
    """Replay the recovery request stream of ``errors`` through a cache.

    ``capacity_blocks`` is the *total* cache in chunks; with ``workers > 1``
    it is partitioned evenly (integer division, like the paper's per-process
    cache slices).  ``hint`` selects what accompanies each request:
    ``"priority"`` (the paper's 1..3 value) or ``"share"`` (the raw chain
    share count, for many-queue FBF variants).  ``sanitize`` wraps every
    policy in :class:`repro.checks.SimSanitizer`, which raises
    :class:`repro.checks.InvariantViolation` the moment a cache invariant
    (FBF single-residency, demotion order, capacity accounting) breaks.
    """
    if hint not in ("priority", "share"):
        raise ValueError(f"hint must be 'priority' or 'share', got {hint!r}")
    if capacity_blocks < 0:
        raise ValueError(f"capacity_blocks must be >= 0, got {capacity_blocks}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if plan_cache is None:
        plan_cache = PlanCache(layout, scheme_mode)
    elif plan_cache.layout is not layout or plan_cache.scheme_mode != scheme_mode:
        raise ValueError("plan_cache was built for a different layout/scheme")

    errors = sorted(errors)
    workers = min(workers, len(errors)) or 1
    per_worker = capacity_blocks // workers
    kwargs = policy_kwargs or {}
    if policy_factory is not None:
        policies = [policy_factory(per_worker) for _ in range(workers)]
    else:
        policies = [make_policy(policy, per_worker, **kwargs) for _ in range(workers)]
    if sanitize:
        # Imported here: repro.checks imports the kernel, which would cycle
        # through repro.sim at module import time.
        from ..checks.sanitizer import SimSanitizer

        policies = [SimSanitizer(p) for p in policies]

    for i, error in enumerate(errors):
        cache = policies[i % workers]
        plan, priorities = plan_cache.get(error)
        stripe = error.stripe
        if hint == "priority":
            lookup = priorities.lookup
        else:
            lookup = lambda cell: max(priorities.share_count(cell), 1)
        for cell in plan.request_sequence:
            cache.request((stripe, cell), priority=lookup(cell))

    hits = sum(p.stats.hits for p in policies)
    misses = sum(p.stats.misses for p in policies)
    return TraceSimResult(
        policy=policy if policy_factory is None else getattr(policies[0], "name", "custom"),
        scheme_mode=scheme_mode,
        code=layout.name,
        p=layout.p,
        capacity_blocks=capacity_blocks,
        workers=workers,
        n_errors=len(errors),
        requests=hits + misses,
        hits=hits,
        disk_reads=misses,
    )
