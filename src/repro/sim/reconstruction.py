"""Serial and SOR-parallel reconstruction of partial stripe error batches.

The paper extends Stripe-Oriented Reconstruction (SOR) to partial stripe
recovery: multiple worker processes each repair a subset of the failed
stripes, and "each process is allocated with a small part of cache" — so
the total buffer cache is partitioned evenly across workers.  Workers
contend for the shared disks, which the event kernel resolves through the
per-disk FIFO queues.

:func:`run_reconstruction` is the main entry point: it assembles the whole
stack (array, per-worker caches, controller, workers), runs the event loop
to completion, and returns a :class:`ReconstructionReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Sequence

from ..cache.base import CachePolicy
from ..cache.registry import make_policy
from ..codes.layout import CodeLayout
from ..core.scheme import SchemeMode
from ..utils import parse_size
from ..workloads.errors import PartialStripeError
from .array import ArrayGeometry, DiskArray
from .cache_sim import TimedBufferCache
from .controller import RAIDController
from .datapath import PayloadOracle, VerifyingDataPath
from .disk import FixedLatencyModel, ServiceTimeModel
from .kernel import Environment

__all__ = ["SimConfig", "ReconstructionReport", "run_reconstruction"]


@dataclass(frozen=True)
class SimConfig:
    """All knobs of one reconstruction simulation.

    Defaults mirror the paper's methodology: 32 KB chunks, 0.5 ms buffer
    access, 10 ms disk access, the FBF chain-selection scheme, parallel
    (SOR) reconstruction with the cache partitioned across workers.
    """

    policy: str = "fbf"
    cache_size: int | str = "2MB"
    chunk_size: int | str = "32KB"
    scheme_mode: SchemeMode = "fbf"
    workers: int = 8
    hit_time: float = 0.0005
    disk_latency: float = 0.010
    #: "fixed" (the paper's 10 ms constant) or "hdd" (seek+rotate+transfer).
    disk_model: str = "fixed"
    #: request ordering on each disk: "fcfs" (queue-depth-1 FIFO), or
    #: "sstf"/"scan" (seek-aware; only meaningful with disk_model="hdd").
    disk_scheduler: str = "fcfs"
    xor_time_per_chunk: float = 1e-5
    parallel_chain_reads: bool = True
    #: if True, an error may not start recovery before its arrival time
    #: (online recovery); if False the batch is repaired back-to-back.
    respect_arrival_times: bool = False
    array_stripes: int = 100_000
    #: carry real payloads and scrub-check every rebuilt chunk against
    #: ground truth (slower; see :mod:`repro.sim.datapath`).
    verify_payloads: bool = False
    payload_size: int = 64
    payload_seed: int = 0
    policy_kwargs: dict = field(default_factory=dict)
    #: run under the invariant sanitizer: every cache request is checked
    #: against FBF's Algorithm 1 (single residency, demotion order,
    #: capacity accounting) and the event kernel asserts order stability.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.disk_model not in ("fixed", "hdd"):
            raise ValueError(f"disk_model must be 'fixed' or 'hdd', got {self.disk_model!r}")
        if self.disk_scheduler not in ("fcfs", "sstf", "scan"):
            raise ValueError(
                f"disk_scheduler must be fcfs/sstf/scan, got {self.disk_scheduler!r}"
            )

    @property
    def cache_bytes(self) -> int:
        return parse_size(self.cache_size)

    @property
    def chunk_bytes(self) -> int:
        return parse_size(self.chunk_size)

    @property
    def cache_blocks_total(self) -> int:
        return self.cache_bytes // self.chunk_bytes

    @property
    def cache_blocks_per_worker(self) -> int:
        return self.cache_blocks_total // self.workers


@dataclass
class ReconstructionReport:
    """Everything the paper's figures read off one simulation run."""

    policy: str
    scheme_mode: str
    code: str
    p: int
    n_errors: int
    chunks_recovered: int
    #: simulated seconds from start to the last spare write (Figure 11).
    reconstruction_time: float
    #: mean simulated response time per chunk request (Figure 10).
    avg_response_time: float
    max_response_time: float
    total_requests: int
    cache_hits: int
    cache_misses: int
    #: disk reads issued during recovery (Figure 9).
    disk_reads: int
    disk_writes: int
    #: mean wall-clock seconds to compute one recovery plan (Table IV).
    overhead_mean_s: float
    overhead_total_s: float
    plan_cache_hits: int
    #: payload verification counters (0 unless ``verify_payloads``).
    payload_chunks_verified: int = 0
    payload_mismatches: int = 0
    #: per-disk (busy seconds, queue-wait seconds, accesses).
    disk_stats: tuple[tuple[float, float, int], ...] = ()

    def disk_utilization(self) -> tuple[float, ...]:
        """Fraction of the run each disk spent servicing requests."""
        if self.reconstruction_time <= 0:
            return tuple(0.0 for _ in self.disk_stats)
        return tuple(
            busy / self.reconstruction_time for busy, _, _ in self.disk_stats
        )

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def overhead_percent(self) -> float:
        """Temporal overhead as % of per-error reconstruction time (Table IV)."""
        if self.reconstruction_time <= 0 or self.n_errors == 0:
            return 0.0
        per_error_recon = self.reconstruction_time / self.n_errors
        return 100.0 * self.overhead_mean_s / per_error_recon


def build_array(env: Environment, geometry: ArrayGeometry, config: SimConfig) -> DiskArray:
    """Assemble the disk bank described by ``config``."""
    if config.disk_model == "fixed" and config.disk_scheduler == "fcfs":
        return DiskArray(
            env, geometry,
            disk_model_factory=lambda i: FixedLatencyModel(config.disk_latency),
        )
    from .disk import SeekRotateTransferModel
    from .scheduling import ScheduledDisk, make_scheduler

    def model(i: int):
        if config.disk_model == "hdd":
            return SeekRotateTransferModel(seed=i)
        return FixedLatencyModel(config.disk_latency)

    return DiskArray(
        env, geometry,
        disk_factory=lambda e, i: ScheduledDisk(
            e, i, model(i), make_scheduler(config.disk_scheduler)
        ),
    )


def _worker(
    env: Environment,
    controller: RAIDController,
    cache: TimedBufferCache,
    errors: Sequence[PartialStripeError],
    respect_arrival_times: bool,
) -> Generator:
    for error in errors:
        if respect_arrival_times and env.now < error.time:
            yield env.timeout(error.time - env.now)
        yield from controller.recover_error(error, cache)


def run_reconstruction(
    layout: CodeLayout,
    errors: Sequence[PartialStripeError],
    config: SimConfig = SimConfig(),
    policy_factory: Callable[[int], CachePolicy] | None = None,
) -> ReconstructionReport:
    """Simulate recovery of ``errors`` on ``layout`` under ``config``.

    ``policy_factory`` overrides the registry lookup (useful for custom
    policies); it receives the per-worker capacity in blocks.
    """
    if not errors:
        raise ValueError("no errors to recover")
    errors = sorted(errors)
    if config.sanitize:
        # Imported here: repro.checks imports this package's kernel, which
        # would cycle at module import time.
        from ..checks.sanitizer import SanitizedEnvironment

        env: Environment = SanitizedEnvironment()
    else:
        env = Environment()
    geometry = ArrayGeometry(
        layout=layout,
        chunk_size=config.chunk_bytes,
        stripes=config.array_stripes,
    )
    array = build_array(env, geometry, config)
    datapath = None
    if config.verify_payloads:
        datapath = VerifyingDataPath(
            PayloadOracle(layout, payload_size=config.payload_size,
                          seed=config.payload_seed)
        )
    controller = RAIDController(
        env,
        array,
        scheme_mode=config.scheme_mode,
        xor_time_per_chunk=config.xor_time_per_chunk,
        parallel_chain_reads=config.parallel_chain_reads,
        datapath=datapath,
    )

    per_worker_blocks = config.cache_blocks_per_worker
    caches: list[TimedBufferCache] = []
    procs = []
    workers = min(config.workers, len(errors))
    for w in range(workers):
        if policy_factory is not None:
            policy = policy_factory(per_worker_blocks)
        else:
            policy = make_policy(config.policy, per_worker_blocks, **config.policy_kwargs)
        cache = TimedBufferCache(
            env, policy, array, hit_time=config.hit_time, sanitize=config.sanitize
        )
        caches.append(cache)
        mine = errors[w::workers]  # SOR round-robin stripe assignment
        procs.append(
            env.process(
                _worker(env, controller, cache, mine, config.respect_arrival_times),
                name=f"sor-worker-{w}",
            )
        )
    env.run(env.all_of(procs))
    recon_time = env.now
    if config.respect_arrival_times:
        recon_time -= min(e.time for e in errors)

    hits = sum(c.policy.stats.hits for c in caches)
    misses = sum(c.policy.stats.misses for c in caches)
    return ReconstructionReport(
        policy=config.policy if policy_factory is None else getattr(
            caches[0].policy, "name", "custom"
        ),
        scheme_mode=config.scheme_mode,
        code=layout.name,
        p=layout.p,
        n_errors=len(errors),
        chunks_recovered=controller.chunks_recovered,
        reconstruction_time=recon_time,
        avg_response_time=(
            sum(c.log.total for c in caches) / max(1, sum(c.log.count for c in caches))
        ),
        max_response_time=max(c.log.max for c in caches),
        total_requests=sum(c.log.count for c in caches),
        cache_hits=hits,
        cache_misses=misses,
        disk_reads=sum(c.log.disk_reads for c in caches),
        disk_writes=array.total_writes,
        overhead_mean_s=controller.overhead.mean,
        overhead_total_s=controller.overhead.total,
        plan_cache_hits=controller.overhead.plan_cache_hits,
        payload_chunks_verified=datapath.chunks_verified if datapath else 0,
        payload_mismatches=datapath.mismatches if datapath else 0,
        disk_stats=tuple(
            (d.stats.busy_time, d.stats.queue_wait, d.stats.accesses)
            for d in array.disks
        ),
    )
