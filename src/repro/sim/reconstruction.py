"""Serial and SOR-parallel reconstruction of partial stripe error batches.

The paper extends Stripe-Oriented Reconstruction (SOR) to partial stripe
recovery: multiple worker processes each repair a subset of the failed
stripes, and "each process is allocated with a small part of cache" — so
the total buffer cache is partitioned evenly across workers.  Workers
contend for the shared disks, which the event kernel resolves through the
per-disk FIFO queues.

:func:`run_reconstruction` is the main entry point: it assembles the whole
stack (array, per-worker caches, controller, workers), runs the event loop
to completion, and returns a :class:`ReconstructionReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Sequence

from ..cache.base import CachePolicy
from ..codes.layout import CodeLayout
from ..core.scheme import SchemeMode
from ..utils import parse_size
from .array import ArrayGeometry, DiskArray, FlatGeometry
from .cache_sim import TimedBufferCache
from .controller import RAIDController
from .disk import FixedLatencyModel
from .kernel import Environment

if TYPE_CHECKING:  # annotation-only: sim stays level with workloads' consumers
    from ..workloads.errors import PartialStripeError
    from .topology import TopologySpec

__all__ = ["SimConfig", "ClusterStats", "ReconstructionReport", "run_reconstruction"]


@dataclass(frozen=True)
class ClusterStats:
    """Traffic and health snapshot of one topology-backed run."""

    racks: int
    nodes: int
    transfers: int
    cross_rack_bytes: int
    intra_rack_bytes: int
    #: per-link ``(name, utilization)`` over the run, nics then uplinks.
    link_utilization: tuple[tuple[str, float], ...] = ()
    #: worst heartbeat RTT per node id (empty if the monitor was off).
    #: RTT outliers alone cannot isolate a fail-slow node under link
    #: congestion — the limplock detection gap; see ``limplock_suspects``.
    heartbeat_rtt_max: tuple[tuple[int, float], ...] = ()
    #: nodes the heartbeat monitor declared dead, with detection vtime.
    nodes_declared_dead: tuple[tuple[int, float], ...] = ()
    #: nodes whose nic counters show traffic served well below nominal
    #: rate (:meth:`repro.sim.topology.ClusterTopology.limplock_suspects`).
    limplock_suspects: tuple[int, ...] = ()

    @property
    def bottleneck(self) -> str:
        """Name of the busiest link ('' when idle)."""
        if not self.link_utilization:
            return ""
        name, util = max(self.link_utilization, key=lambda nu: nu[1])
        return name if util > 0 else ""


@dataclass(frozen=True)
class SimConfig:
    """All knobs of one reconstruction simulation.

    Defaults mirror the paper's methodology: 32 KB chunks, 0.5 ms buffer
    access, 10 ms disk access, the FBF chain-selection scheme, parallel
    (SOR) reconstruction with the cache partitioned across workers.
    """

    policy: str = "fbf"
    cache_size: int | str = "2MB"
    chunk_size: int | str = "32KB"
    scheme_mode: SchemeMode = "fbf"
    workers: int = 8
    hit_time: float = 0.0005
    disk_latency: float = 0.010
    #: "fixed" (the paper's 10 ms constant) or "hdd" (seek+rotate+transfer).
    disk_model: str = "fixed"
    #: request ordering on each disk: "fcfs" (queue-depth-1 FIFO), or
    #: "sstf"/"scan" (seek-aware; only meaningful with disk_model="hdd").
    disk_scheduler: str = "fcfs"
    xor_time_per_chunk: float = 1e-5
    parallel_chain_reads: bool = True
    #: if True, an error may not start recovery before its arrival time
    #: (online recovery); if False the batch is repaired back-to-back.
    respect_arrival_times: bool = False
    array_stripes: int = 100_000
    #: carry real payloads and scrub-check every rebuilt chunk against
    #: ground truth (slower; see :mod:`repro.sim.datapath`).
    verify_payloads: bool = False
    payload_size: int = 64
    payload_seed: int = 0
    policy_kwargs: dict = field(default_factory=dict)
    #: run under the invariant sanitizer: every cache request is checked
    #: against FBF's Algorithm 1 (single residency, demotion order,
    #: capacity accounting) and the event kernel asserts order stability.
    sanitize: bool = False
    #: place the array on a rack-aware cluster: disks attach to nodes and
    #: chunk traffic charges link bandwidth.  None (and the degenerate
    #: one-node spec) reproduces the single-controller rows bit-identically.
    topology: "TopologySpec | None" = None
    #: record per-request response times in a histogram so the report can
    #: carry p99 (degraded-mode tail reporting); off by default.
    response_quantiles: bool = False
    #: recycle retired Event/Timeout objects in the kernel's free-list
    #: pools (DESIGN.md §16).  Results are bit-identical either way; the
    #: switch exists so the kernel bench and tests can A/B the pools.
    kernel_pooling: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.disk_model not in ("fixed", "hdd"):
            raise ValueError(f"disk_model must be 'fixed' or 'hdd', got {self.disk_model!r}")
        if self.disk_scheduler not in ("fcfs", "sstf", "scan"):
            raise ValueError(
                f"disk_scheduler must be fcfs/sstf/scan, got {self.disk_scheduler!r}"
            )

    @property
    def cache_bytes(self) -> int:
        return parse_size(self.cache_size)

    @property
    def chunk_bytes(self) -> int:
        return parse_size(self.chunk_size)

    @property
    def cache_blocks_total(self) -> int:
        return self.cache_bytes // self.chunk_bytes

    @property
    def cache_blocks_per_worker(self) -> int:
        return self.cache_blocks_total // self.workers


@dataclass
class ReconstructionReport:
    """Everything the paper's figures read off one simulation run."""

    policy: str
    scheme_mode: str
    code: str
    p: int
    n_errors: int
    chunks_recovered: int
    #: simulated seconds from start to the last spare write (Figure 11).
    reconstruction_time: float
    #: mean simulated response time per chunk request (Figure 10).
    avg_response_time: float
    max_response_time: float
    total_requests: int
    cache_hits: int
    cache_misses: int
    #: disk reads issued during recovery (Figure 9).
    disk_reads: int
    disk_writes: int
    #: mean wall-clock seconds to compute one recovery plan (Table IV).
    overhead_mean_s: float
    overhead_total_s: float
    plan_cache_hits: int
    #: payload verification counters (0 unless ``verify_payloads``).
    payload_chunks_verified: int = 0
    payload_mismatches: int = 0
    #: per-disk (busy seconds, queue-wait seconds, accesses).
    disk_stats: tuple[tuple[float, float, int], ...] = ()
    #: 99th-percentile response time (None unless ``response_quantiles``).
    #: None defaults keep `report_a == report_b` golden comparisons exact.
    p99_response_time: float | None = None
    #: cluster traffic snapshot (None unless a topology was configured).
    cluster: "ClusterStats | None" = None

    #: wall-clock measured columns (Table IV plan-computation overhead) —
    #: excluded from simulated-identity comparisons, like the bench rows'
    #: MEASURED_FIELDS (DESIGN.md §9 determinism contract).
    MEASURED_FIELDS = ("overhead_mean_s", "overhead_total_s")

    def simulated_dict(self, exclude: tuple[str, ...] = ()) -> dict:
        """Simulated-only fields, for bit-identity checks across runs."""
        from dataclasses import fields

        skip = set(self.MEASURED_FIELDS) | set(exclude)
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in skip
        }

    def disk_utilization(self) -> tuple[float, ...]:
        """Fraction of the run each disk spent servicing requests."""
        if self.reconstruction_time <= 0:
            return tuple(0.0 for _ in self.disk_stats)
        return tuple(
            busy / self.reconstruction_time for busy, _, _ in self.disk_stats
        )

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def overhead_percent(self) -> float:
        """Temporal overhead as % of per-error reconstruction time (Table IV)."""
        if self.reconstruction_time <= 0 or self.n_errors == 0:
            return 0.0
        per_error_recon = self.reconstruction_time / self.n_errors
        return 100.0 * self.overhead_mean_s / per_error_recon


def build_array(
    env: Environment,
    geometry: ArrayGeometry | FlatGeometry,
    config: SimConfig,
    topology=None,
) -> DiskArray:
    """Assemble the disk bank described by ``config``.

    ``topology`` (a built :class:`~repro.sim.topology.ClusterTopology`)
    attaches the disks to cluster nodes and routes chunk traffic over
    the links; the controller lives on the spec's home node."""
    home = 0
    if topology is not None and config.topology is not None:
        home = config.topology.controller_node
    if config.disk_model == "fixed" and config.disk_scheduler == "fcfs":
        return DiskArray(
            env, geometry,
            disk_model_factory=lambda i: FixedLatencyModel(config.disk_latency),
            topology=topology, home_node=home,
        )
    from .disk import SeekRotateTransferModel
    from .scheduling import ScheduledDisk, make_scheduler

    def model(i: int):
        if config.disk_model == "hdd":
            return SeekRotateTransferModel(seed=i)
        return FixedLatencyModel(config.disk_latency)

    return DiskArray(
        env, geometry,
        disk_factory=lambda e, i: ScheduledDisk(
            e, i, model(i), make_scheduler(config.disk_scheduler)
        ),
        topology=topology, home_node=home,
    )


def _worker(
    env: Environment,
    controller: RAIDController,
    cache: TimedBufferCache,
    errors: Sequence[PartialStripeError],
    respect_arrival_times: bool,
) -> Generator:
    recover = controller.recover_error
    if not respect_arrival_times:
        # Batch mode repairs back-to-back: no arrival check per error.
        for error in errors:
            yield from recover(error, cache)
        return
    timeout = env.timeout
    for error in errors:
        # Only wait for arrivals still in the future — an arrival time at
        # or before ``now`` must not cost a redundant zero-delay event.
        delay = error.time - env.now
        if delay > 0:
            yield timeout(delay)
        yield from recover(error, cache)


def run_reconstruction(
    layout: CodeLayout,
    errors: Sequence[PartialStripeError],
    config: SimConfig = SimConfig(),
    policy_factory: Callable[[int], CachePolicy] | None = None,
) -> ReconstructionReport:
    """Simulate recovery of ``errors`` on ``layout`` under ``config``.

    XOR-world convenience wrapper: builds an :class:`~repro.engine.
    backends.XORBackend` from ``(layout, config.scheme_mode)`` and runs
    the unified :func:`repro.engine.timed.run_timed_replay`.
    ``policy_factory`` overrides the registry lookup (useful for custom
    policies); it receives the per-worker capacity in blocks.
    """
    from ..engine.backends import XORBackend
    from ..engine.timed import run_timed_replay

    backend = XORBackend(layout, config.scheme_mode)
    return run_timed_replay(backend, errors, config, policy_factory)
