"""Rack-aware cluster topology over the event kernel.

The paper evaluates FBF inside one RAID controller, but its headline
claim — faster partial-stripe recovery — matters most where recovery
traffic is scarce: cross-rack bandwidth in a distributed array (Rashmi
et al.'s Facebook-warehouse study).  This module supplies the resource
model that lifts the simulator to that setting:

* :class:`Node` — cpu/memory/nic as contended kernel resources
  (:class:`~repro.sim.kernel.Resource` and
  :class:`~repro.sim.kernel.Container`), with disks attached;
* :class:`Link` — shared bandwidth modelled as a token
  :class:`~repro.sim.kernel.Container`: a transfer claims one stream's
  rate for its duration, so concurrent transfers beyond the stream
  count queue FIFO;
* :class:`Switch` / :class:`Rack` — rack uplinks hang off one core
  switch; cross-rack routes traverse both racks' uplinks;
* :class:`ClusterTopology` — node placement, deterministic routing and
  the transfer generator that charges every hop;
* :class:`HeartbeatMonitor` — periodic node→master pings over the same
  links: crashed nodes are detected after ``miss_threshold`` silent
  periods, while limplocked (fail-slow) nodes keep answering and only
  show up as RTT outliers (the fail-slow detection gap);
* :class:`FaultInjector` — scheduled limplock and failure-burst
  injection.

Determinism: every collection is insertion-ordered, routes are pure
functions of ``(src, dst)``, and all waiting runs through the kernel's
FIFO resource/container queues — a topology run is a pure function of
its inputs.  The **degenerate one-node topology** routes every transfer
over the empty path, scheduling zero extra events, which is how the
single-controller world stays bit-identical (see DESIGN.md §15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Iterable

from ..obs import runtime as _obs
from .kernel import Container, Environment, Resource, SimulationError

__all__ = [
    "NodeFailure",
    "LinkStats",
    "Link",
    "Node",
    "Rack",
    "Switch",
    "ClusterTopology",
    "TopologySpec",
    "HeartbeatMonitor",
    "FaultInjector",
    "build_topology",
    "single_node_topology",
]


class NodeFailure(SimulationError):
    """A transfer or access touched a node that has crashed."""


@dataclass
class LinkStats:
    """Per-link traffic accounting (the cluster report reads these)."""

    transfers: int = 0
    bytes_moved: int = 0
    busy_time: float = 0.0
    wait_time: float = 0.0


class Link:
    """A network hop with shared bandwidth and per-hop latency.

    ``bandwidth`` bytes/second are split into ``streams`` equal shares
    held in a :class:`~repro.sim.kernel.Container`: each transfer claims
    one share for ``latency + nbytes/share`` seconds, so at most
    ``streams`` transfers progress concurrently and the rest queue in
    FIFO order.  :meth:`limplock` divides the *served* rate without
    touching the token accounting, so a slow link serves the same
    concurrency at a fraction of the speed — the fail-slow signature.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth: float,
        latency: float = 50e-6,
        streams: int = 4,
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if streams < 1:
            raise ValueError(f"streams must be >= 1, got {streams}")
        self.env = env
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = latency
        self.streams = streams
        self._tokens = Container(env, capacity=bandwidth, init=bandwidth)
        self._slowdown = 1.0
        self.stats = LinkStats()

    @property
    def stream_rate(self) -> float:
        """Bytes/second one transfer currently gets."""
        return self.bandwidth / self.streams / self._slowdown

    def limplock(self, factor: float) -> None:
        """Serve every future transfer ``factor`` times slower."""
        if factor < 1.0:
            raise ValueError(f"limplock factor must be >= 1, got {factor}")
        self._slowdown = factor

    def transfer(self, nbytes: int) -> Generator:
        """Process generator: move ``nbytes`` across this hop."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be > 0, got {nbytes}")
        share = self.bandwidth / self.streams
        arrived = self.env.now
        yield self._tokens.get(share)
        self.stats.wait_time += self.env.now - arrived
        try:
            duration = self.latency + nbytes / self.stream_rate
            yield self.env.timeout(duration)
            self.stats.transfers += 1
            self.stats.bytes_moved += nbytes
            self.stats.busy_time += duration
        finally:
            self._tokens.put(share)

    def utilization(self, duration: float) -> float:
        """Fraction of ``streams * duration`` spent serving transfers."""
        if duration <= 0:
            return 0.0
        return self.stats.busy_time / (self.streams * duration)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Link({self.name}, {self.bandwidth:.3g} B/s)"


class Node:
    """One cluster machine: cpu, memory and nic as contended resources."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        rack_id: int,
        cores: int = 8,
        memory_bytes: int = 4 << 30,
        nic_bandwidth: float = 1.25e9,
        link_latency: float = 50e-6,
        streams: int = 4,
    ):
        self.env = env
        self.node_id = node_id
        self.rack_id = rack_id
        self.cpu = Resource(env, capacity=cores)
        self.memory = Container(env, capacity=memory_bytes, init=memory_bytes)
        self.nic = Link(
            env, f"node{node_id}.nic", nic_bandwidth,
            latency=link_latency, streams=streams,
        )
        self.disks: list = []
        self.failed = False
        self.slow_factor = 1.0

    def attach(self, disk) -> None:
        """Attach a simulated disk; limplock then covers its service times."""
        self.disks.append(disk)
        disk.node_id = self.node_id
        disk.service_scale = self.slow_factor

    def limplock(self, factor: float) -> None:
        """Fail-slow: nic and every attached disk run ``factor``× slower."""
        if factor < 1.0:
            raise ValueError(f"limplock factor must be >= 1, got {factor}")
        self.slow_factor = factor
        self.nic.limplock(factor)
        for disk in self.disks:
            disk.service_scale = factor

    def fail(self) -> None:
        """Crash the node: subsequent transfers raise :class:`NodeFailure`."""
        self.failed = True

    def check_alive(self) -> None:
        if self.failed:
            raise NodeFailure(f"node {self.node_id} has failed")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "failed" if self.failed else (
            f"limplock x{self.slow_factor:g}" if self.slow_factor > 1 else "up"
        )
        return f"Node({self.node_id}, rack={self.rack_id}, {state})"


@dataclass
class Rack:
    """A rack: its nodes plus the shared uplink to the core switch."""

    rack_id: int
    nodes: list[Node]
    uplink: Link


class Switch:
    """The core switch: one shared uplink per rack hangs off it."""

    def __init__(self, env: Environment, name: str = "core"):
        self.env = env
        self.name = name
        self.uplinks: dict[int, Link] = {}

    def connect(self, rack_id: int, uplink: Link) -> None:
        self.uplinks[rack_id] = uplink


@dataclass(frozen=True)
class TopologySpec:
    """Declarative, hashable shape of a cluster (rides in ``SimConfig``).

    The defaults model the Rashmi-et-al. setting: 10 GbE NICs behind a
    ~10:1 oversubscribed rack uplink, so cross-rack bandwidth — not the
    disks — is the scarce recovery resource.  ``racks=1, nodes_per_rack
    =1`` is the degenerate single-controller world: every route is
    empty and the simulation is event-for-event identical to running
    with no topology at all.
    """

    racks: int = 1
    nodes_per_rack: int = 1
    controller_node: int = 0
    nic_bandwidth: float = 1.25e9  # 10 GbE
    uplink_bandwidth: float = 1.25e8  # ~10:1 oversubscription
    link_latency: float = 50e-6
    streams_per_link: int = 4
    cores_per_node: int = 8
    memory_per_node: int = 4 << 30
    #: fail-slow injection applied at build time (None = healthy).
    limplock_node: int | None = None
    limplock_factor: float = 1.0
    #: heartbeat period in simulated seconds (0 = monitor off).
    heartbeat_period: float = 0.0
    heartbeat_miss_threshold: int = 3

    def __post_init__(self) -> None:
        if self.racks < 1 or self.nodes_per_rack < 1:
            raise ValueError("racks and nodes_per_rack must be >= 1")
        if not 0 <= self.controller_node < self.num_nodes:
            raise ValueError(
                f"controller_node {self.controller_node} outside "
                f"[0, {self.num_nodes})"
            )
        if self.limplock_node is not None:
            if not 0 <= self.limplock_node < self.num_nodes:
                raise ValueError(f"limplock_node {self.limplock_node} out of range")
            if self.limplock_factor < 1.0:
                raise ValueError("limplock_factor must be >= 1")
        if self.heartbeat_period < 0:
            raise ValueError("heartbeat_period must be >= 0")

    @property
    def num_nodes(self) -> int:
        return self.racks * self.nodes_per_rack


class ClusterTopology:
    """Placement, routing and transfer accounting for a built cluster."""

    def __init__(self, env: Environment, racks: list[Rack], switch: Switch):
        self.env = env
        self.racks = racks
        self.switch = switch
        self.nodes: list[Node] = [n for rack in racks for n in rack.nodes]
        self.cross_rack_bytes = 0
        self.intra_rack_bytes = 0
        self.transfers = 0

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        """Ordered hops from ``src`` to ``dst``; empty for the same node."""
        if src == dst:
            return ()
        a, b = self.nodes[src], self.nodes[dst]
        if a.rack_id == b.rack_id:
            return (a.nic, b.nic)
        return (
            a.nic,
            self.racks[a.rack_id].uplink,
            self.racks[b.rack_id].uplink,
            b.nic,
        )

    def transfer(self, src: int, dst: int, nbytes: int) -> Generator:
        """Process generator: move ``nbytes`` from node to node.

        An empty route (same node, including the degenerate one-node
        topology) yields no events at all — the bit-identity guarantee.
        """
        route = self.route(src, dst)
        if not route:
            return
        self.nodes[src].check_alive()
        self.nodes[dst].check_alive()
        for link in route:
            yield from link.transfer(nbytes)
        self.transfers += 1
        if self.nodes[src].rack_id == self.nodes[dst].rack_id:
            self.intra_rack_bytes += nbytes
        else:
            self.cross_rack_bytes += nbytes
        if _obs.ENABLED:
            _obs.counter("cluster.transfer.count").inc()
            _obs.counter("cluster.link.bytes").inc(nbytes)
            if self.nodes[src].rack_id != self.nodes[dst].rack_id:
                _obs.counter("cluster.link.cross_rack_bytes").inc(nbytes)

    # -- fault injection -------------------------------------------------
    def limplock(self, node_id: int, factor: float) -> None:
        self.nodes[node_id].limplock(factor)

    def fail_node(self, node_id: int) -> None:
        self.nodes[node_id].fail()

    # -- accounting ------------------------------------------------------
    def links(self) -> list[Link]:
        """Every link, deterministic order: nics first, then uplinks."""
        return [n.nic for n in self.nodes] + [r.uplink for r in self.racks]

    def limplock_suspects(self, factor: float = 4.0) -> tuple[int, ...]:
        """Nodes whose nic spent ``factor``× the expected time serving.

        Heartbeat RTTs cannot catch fail-slow under congestion (queueing
        at busy links drowns the signal — the limplock detection gap),
        but the nic counters can: comparing measured busy time against
        ``transfers * latency + bytes / nominal_rate`` normalises for
        per-transfer latency (so heartbeat-only nics with tiny payloads
        don't false-positive) and reads the slowdown factor directly.
        Nodes that moved no bytes are skipped.
        """
        out = []
        for node in self.nodes:
            stats = node.nic.stats
            if stats.busy_time <= 0 or stats.bytes_moved <= 0:
                continue
            nominal = node.nic.bandwidth / node.nic.streams
            expected = stats.transfers * node.nic.latency + stats.bytes_moved / nominal
            if stats.busy_time > factor * expected:
                out.append(node.node_id)
        return tuple(out)

    def link_utilization(self, duration: float) -> tuple[tuple[str, float], ...]:
        return tuple(
            (link.name, link.utilization(duration)) for link in self.links()
        )


class HeartbeatMonitor:
    """Fixed-period node→master pings over the real links.

    A crashed node is *detected* after ``miss_threshold`` silent
    periods (detection time recorded per node).  A limplocked node
    keeps answering — it is only visible as an RTT outlier via
    :meth:`suspects` — which reproduces the classic fail-slow
    detection gap the limplock literature describes.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        master: int = 0,
        period: float = 1.0,
        payload: int = 4096,
        miss_threshold: int = 3,
    ):
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        if miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1, got {miss_threshold}")
        self.topology = topology
        self.master = master
        self.period = period
        self.payload = payload
        self.miss_threshold = miss_threshold
        self.rtt_max: dict[int, float] = {}
        self.detected_at: dict[int, float] = {}

    def start(self) -> list:
        """Spawn one ping process per non-master node."""
        return [
            self.topology.env.process(
                self._ping_loop(node.node_id),
                name=f"heartbeat-{node.node_id}",
            )
            for node in self.topology.nodes
            if node.node_id != self.master
        ]

    def _ping_loop(self, node_id: int) -> Generator:
        env = self.topology.env
        missed = 0
        while True:
            yield env.timeout(self.period)
            t0 = env.now
            try:
                yield from self.topology.transfer(node_id, self.master, self.payload)
            except NodeFailure:
                missed += 1
                if _obs.ENABLED:
                    _obs.counter("cluster.heartbeat.missed").inc()
                if missed >= self.miss_threshold:
                    self.detected_at[node_id] = env.now
                    if _obs.ENABLED:
                        _obs.counter("cluster.heartbeat.nodes_declared_dead").inc()
                    return
                continue
            missed = 0
            rtt = env.now - t0
            if rtt > self.rtt_max.get(node_id, 0.0):
                self.rtt_max[node_id] = rtt
            if _obs.ENABLED:
                _obs.counter("cluster.heartbeat.sent").inc()

    def suspects(self, rtt_threshold: float) -> tuple[int, ...]:
        """Nodes whose worst heartbeat RTT exceeded the threshold."""
        return tuple(
            node_id
            for node_id, rtt in self.rtt_max.items()
            if rtt > rtt_threshold
        )


@dataclass
class FaultInjector:
    """Schedules limplock and node-failure events at fixed virtual times."""

    topology: ClusterTopology
    injected: list[tuple[float, str, int]] = field(default_factory=list)

    def fail_at(self, node_id: int, at: float):
        """Crash ``node_id`` at virtual time ``at``."""
        return self.topology.env.process(
            self._apply(at, "fail", node_id), name=f"fail-{node_id}"
        )

    def limplock_at(self, node_id: int, factor: float, at: float):
        """Limplock ``node_id`` by ``factor`` at virtual time ``at``."""
        return self.topology.env.process(
            self._apply(at, "limplock", node_id, factor),
            name=f"limplock-{node_id}",
        )

    def burst(self, node_ids: Iterable[int], start: float, spacing: float = 0.0):
        """A correlated failure burst: nodes crash ``spacing`` apart."""
        return [
            self.fail_at(node_id, start + i * spacing)
            for i, node_id in enumerate(node_ids)
        ]

    def _apply(self, at: float, kind: str, node_id: int, factor: float = 1.0):
        env = self.topology.env
        if at > env.now:
            yield env.timeout(at - env.now)
        if kind == "fail":
            self.topology.fail_node(node_id)
        else:
            self.topology.limplock(node_id, factor)
        self.injected.append((env.now, kind, node_id))
        if _obs.ENABLED:
            _obs.counter(f"cluster.faults.{kind}").inc()


def build_topology(env: Environment, spec: TopologySpec) -> ClusterTopology:
    """Materialise a :class:`TopologySpec` (applies any limplock spec)."""
    switch = Switch(env)
    racks: list[Rack] = []
    for rack_id in range(spec.racks):
        nodes = [
            Node(
                env,
                node_id=rack_id * spec.nodes_per_rack + i,
                rack_id=rack_id,
                cores=spec.cores_per_node,
                memory_bytes=spec.memory_per_node,
                nic_bandwidth=spec.nic_bandwidth,
                link_latency=spec.link_latency,
                streams=spec.streams_per_link,
            )
            for i in range(spec.nodes_per_rack)
        ]
        uplink = Link(
            env, f"rack{rack_id}.uplink", spec.uplink_bandwidth,
            latency=spec.link_latency, streams=spec.streams_per_link,
        )
        switch.connect(rack_id, uplink)
        racks.append(Rack(rack_id=rack_id, nodes=nodes, uplink=uplink))
    topology = ClusterTopology(env, racks, switch)
    if spec.limplock_node is not None and spec.limplock_factor > 1.0:
        topology.limplock(spec.limplock_node, spec.limplock_factor)
    return topology


def single_node_topology(env: Environment) -> ClusterTopology:
    """The degenerate one-node cluster (every route is empty)."""
    return build_topology(env, TopologySpec())
