"""Storage simulation substrate (our DiskSim substitute).

* :mod:`repro.sim.kernel` — discrete-event engine.
* :mod:`repro.sim.disk` / :mod:`repro.sim.array` — disks and the array.
* :mod:`repro.sim.cache_sim` — the timed buffer cache.
* :mod:`repro.sim.controller` — the RAID controller's recovery logic.
* :mod:`repro.sim.reconstruction` — serial/SOR batch reconstruction.
* :mod:`repro.sim.topology` — racks, nodes, links: the cluster resource
  model (the single-controller world is its degenerate one-node case).
* :mod:`repro.sim.tracesim` — fast untimed cache-trace replay.

The cross-rack recovery *scenario* lives one layer up in
:mod:`repro.sim.cluster` (it drives the engine's timed replay, so it
cannot live at this layer without an upward import).
"""

from .array import ArrayGeometry, DiskArray, FlatGeometry
from .cache_sim import ResponseLog, TimedBufferCache
from .controller import OverheadLog, RAIDController
from .disk import (
    Disk,
    DiskStats,
    FixedLatencyModel,
    SeekRotateTransferModel,
)
from .kernel import (
    AllOf,
    Container,
    Environment,
    Event,
    Interrupt,
    Process,
    Request,
    Resource,
    SimulationError,
    Store,
    Timeout,
)
from .datapath import PayloadOracle, VerifyingDataPath
from .dor import run_reconstruction_dor
from .online import OnlineReport, run_online_recovery
from .rebuild import (
    RebuildSavings,
    rebuild_errors,
    rebuild_read_savings,
    run_disk_rebuild,
)
from .reconstruction import (
    ClusterStats,
    ReconstructionReport,
    SimConfig,
    build_array,
    run_reconstruction,
)
from .scheduling import (
    FCFSScheduler,
    SSTFScheduler,
    ScanScheduler,
    ScheduledDisk,
    make_scheduler,
)
from .topology import (
    ClusterTopology,
    FaultInjector,
    HeartbeatMonitor,
    Link,
    Node,
    NodeFailure,
    Rack,
    Switch,
    TopologySpec,
    build_topology,
    single_node_topology,
)
from .tracesim import PlanCache, TraceSimResult, simulate_cache_trace

__all__ = [
    "ArrayGeometry",
    "DiskArray",
    "FlatGeometry",
    "ResponseLog",
    "TimedBufferCache",
    "OverheadLog",
    "RAIDController",
    "Disk",
    "DiskStats",
    "FixedLatencyModel",
    "SeekRotateTransferModel",
    "AllOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "ClusterStats",
    "ReconstructionReport",
    "SimConfig",
    "build_array",
    "run_reconstruction",
    "ClusterTopology",
    "FaultInjector",
    "HeartbeatMonitor",
    "Link",
    "Node",
    "NodeFailure",
    "Rack",
    "Switch",
    "TopologySpec",
    "build_topology",
    "single_node_topology",
    "run_reconstruction_dor",
    "OnlineReport",
    "run_online_recovery",
    "RebuildSavings",
    "rebuild_errors",
    "rebuild_read_savings",
    "run_disk_rebuild",
    "PayloadOracle",
    "VerifyingDataPath",
    "FCFSScheduler",
    "SSTFScheduler",
    "ScanScheduler",
    "ScheduledDisk",
    "make_scheduler",
    "PlanCache",
    "TraceSimResult",
    "simulate_cache_trace",
]
