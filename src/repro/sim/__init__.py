"""Storage simulation substrate (our DiskSim substitute).

* :mod:`repro.sim.kernel` — discrete-event engine.
* :mod:`repro.sim.disk` / :mod:`repro.sim.array` — disks and the array.
* :mod:`repro.sim.cache_sim` — the timed buffer cache.
* :mod:`repro.sim.controller` — the RAID controller's recovery logic.
* :mod:`repro.sim.reconstruction` — serial/SOR batch reconstruction.
* :mod:`repro.sim.tracesim` — fast untimed cache-trace replay.
"""

from .array import ArrayGeometry, DiskArray, FlatGeometry
from .cache_sim import ResponseLog, TimedBufferCache
from .controller import OverheadLog, RAIDController
from .disk import (
    Disk,
    DiskStats,
    FixedLatencyModel,
    SeekRotateTransferModel,
)
from .kernel import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Request,
    Resource,
    SimulationError,
    Store,
    Timeout,
)
from .datapath import PayloadOracle, VerifyingDataPath
from .dor import run_reconstruction_dor
from .online import OnlineReport, run_online_recovery
from .rebuild import (
    RebuildSavings,
    rebuild_errors,
    rebuild_read_savings,
    run_disk_rebuild,
)
from .reconstruction import ReconstructionReport, SimConfig, build_array, run_reconstruction
from .scheduling import (
    FCFSScheduler,
    SSTFScheduler,
    ScanScheduler,
    ScheduledDisk,
    make_scheduler,
)
from .tracesim import PlanCache, TraceSimResult, simulate_cache_trace

__all__ = [
    "ArrayGeometry",
    "DiskArray",
    "FlatGeometry",
    "ResponseLog",
    "TimedBufferCache",
    "OverheadLog",
    "RAIDController",
    "Disk",
    "DiskStats",
    "FixedLatencyModel",
    "SeekRotateTransferModel",
    "AllOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "ReconstructionReport",
    "SimConfig",
    "build_array",
    "run_reconstruction",
    "run_reconstruction_dor",
    "OnlineReport",
    "run_online_recovery",
    "RebuildSavings",
    "rebuild_errors",
    "rebuild_read_savings",
    "run_disk_rebuild",
    "PayloadOracle",
    "VerifyingDataPath",
    "FCFSScheduler",
    "SSTFScheduler",
    "ScanScheduler",
    "ScheduledDisk",
    "make_scheduler",
    "PlanCache",
    "TraceSimResult",
    "simulate_cache_trace",
]
