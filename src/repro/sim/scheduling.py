"""Disk request scheduling disciplines.

:class:`~repro.sim.disk.Disk` serves requests FIFO through its queue
resource, which is what the paper's fixed-latency evaluation needs.  For
sensitivity studies with the mechanical disk model, request *ordering*
matters: seek-aware disciplines shorten head travel under load.  This
module provides the classic trio behind a common interface and a
:class:`ScheduledDisk` that serves its queue through one:

* :class:`FCFSScheduler` — first come, first served (baseline).
* :class:`SSTFScheduler` — shortest seek time first (greedy nearest LBA).
* :class:`ScanScheduler` — the elevator: sweep upward serving requests in
  LBA order, reverse at the last request, sweep down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generator

from .disk import AccessKind, DiskStats, ServiceTimeModel, FixedLatencyModel
from .kernel import Environment, Event

__all__ = [
    "PendingRequest",
    "FCFSScheduler",
    "SSTFScheduler",
    "ScanScheduler",
    "ScheduledDisk",
    "make_scheduler",
]


@dataclass
class PendingRequest:
    """One queued disk access waiting to be scheduled."""

    kind: AccessKind
    lba: int
    nbytes: int
    arrived: float
    done: Event


class FCFSScheduler:
    """Serve in arrival order."""

    name = "fcfs"

    def __init__(self) -> None:
        self._queue: deque[PendingRequest] = deque()

    def push(self, req: PendingRequest) -> None:
        self._queue.append(req)

    def pop(self, head_lba: int) -> PendingRequest | None:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class SSTFScheduler:
    """Serve the request closest to the current head position."""

    name = "sstf"

    def __init__(self) -> None:
        self._queue: list[PendingRequest] = []

    def push(self, req: PendingRequest) -> None:
        self._queue.append(req)

    def pop(self, head_lba: int) -> PendingRequest | None:
        if not self._queue:
            return None
        # stable nearest: ties resolved by arrival (list order)
        best_i = min(
            range(len(self._queue)),
            key=lambda i: abs(self._queue[i].lba - head_lba),
        )
        return self._queue.pop(best_i)

    def __len__(self) -> int:
        return len(self._queue)


class ScanScheduler:
    """The elevator algorithm: serve in LBA order along the sweep."""

    name = "scan"

    def __init__(self) -> None:
        self._queue: list[PendingRequest] = []
        self._direction = 1  # +1 sweeping up, -1 sweeping down

    def push(self, req: PendingRequest) -> None:
        self._queue.append(req)

    def pop(self, head_lba: int) -> PendingRequest | None:
        if not self._queue:
            return None
        ahead = [r for r in self._queue if (r.lba - head_lba) * self._direction >= 0]
        if not ahead:
            self._direction = -self._direction
            ahead = self._queue
        nxt = min(ahead, key=lambda r: (abs(r.lba - head_lba), r.arrived))
        self._queue.remove(nxt)
        return nxt

    def __len__(self) -> int:
        return len(self._queue)


_SCHEDULERS = {
    "fcfs": FCFSScheduler,
    "sstf": SSTFScheduler,
    "scan": ScanScheduler,
}


def make_scheduler(name: str):
    """Instantiate a scheduler by name (``fcfs``, ``sstf``, ``scan``)."""
    try:
        return _SCHEDULERS[name.strip().lower()]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {', '.join(sorted(_SCHEDULERS))}"
        ) from None


class ScheduledDisk:
    """A disk serving its queue through a pluggable scheduling discipline.

    Drop-in alternative to :class:`~repro.sim.disk.Disk` (same ``access``
    generator contract and ``stats``): requests enqueue into the scheduler
    and a single server loop picks the next one whenever the platter is
    idle.  Head position is tracked in LBA space and handed to the
    scheduler for seek-aware decisions.
    """

    def __init__(
        self,
        env: Environment,
        disk_id: int,
        model: ServiceTimeModel | None = None,
        scheduler: Any = None,
    ):
        self.env = env
        self.disk_id = disk_id
        self.model = model if model is not None else FixedLatencyModel()
        self.scheduler = scheduler if scheduler is not None else FCFSScheduler()
        self.stats = DiskStats()
        # topology hooks, mirroring Disk (limplock scales service times)
        self.node_id: int | None = None
        self.service_scale = 1.0
        self._head_lba = 0
        self._busy = False
        self._server: Any | None = None

    @property
    def queue_length(self) -> int:
        return len(self.scheduler)

    def access(self, kind: AccessKind, lba: int, nbytes: int) -> Generator:
        """Process generator: enqueue, wait for completion."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be > 0, got {nbytes}")
        req = PendingRequest(
            kind=kind, lba=lba, nbytes=nbytes, arrived=self.env.now,
            done=self.env.event(),
        )
        self.scheduler.push(req)
        if not self._busy:
            self._busy = True
            self.env.process(self._serve(), name=f"disk-{self.disk_id}-server")
        yield req.done

    def _serve(self) -> Generator:
        while True:
            req = self.scheduler.pop(self._head_lba)
            if req is None:
                self._busy = False
                return
            self.stats.queue_wait += self.env.now - req.arrived
            service = self.model.service_time(req.lba, req.nbytes, req.kind) * self.service_scale
            yield self.env.timeout(service)
            self.stats.busy_time += service
            self._head_lba = req.lba
            if req.kind == "read":
                self.stats.reads += 1
                self.stats.bytes_read += req.nbytes
            else:
                self.stats.writes += 1
                self.stats.bytes_written += req.nbytes
            req.done.succeed()
