"""The timed buffer cache sitting between the controller and the array.

Wraps any replacement policy from :mod:`repro.cache` (or FBF) and charges
the paper's service times: a cache hit costs ``hit_time`` (0.5 ms), a miss
goes to the disk array (10 ms under the default disk model, plus any
queueing delay).  Per-request response times are recorded for the paper's
"average response time" metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from ..cache.base import CachePolicy
from ..codes.layout import Cell
from .array import DiskArray
from .kernel import Environment

if TYPE_CHECKING:  # annotation-only: sim must not import obs at runtime
    from ..obs.metrics import Histogram

__all__ = ["ResponseLog", "TimedBufferCache"]


@dataclass
class ResponseLog:
    """Aggregated response-time statistics (no per-request list kept)."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0
    disk_reads: int = 0
    #: optional :class:`repro.obs.metrics.Histogram` for quantiles
    #: (p99 degraded-mode reporting); may be shared across workers.
    histogram: "Histogram | None" = None

    def record(self, elapsed: float, was_hit: bool) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed
        if not was_hit:
            self.disk_reads += 1
        histogram = self.histogram
        if histogram is not None:
            histogram.observe(elapsed)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class TimedBufferCache:
    """A buffer cache with simulated access times.

    One instance per reconstruction worker under the paper's SOR
    parallelism (each worker gets a slice of the cache), or one shared
    instance in serial mode.
    """

    def __init__(
        self,
        env: Environment,
        policy: CachePolicy,
        array: DiskArray,
        hit_time: float = 0.0005,
        sanitize: bool = False,
        response_histogram: "Histogram | None" = None,
    ):
        if hit_time < 0:
            raise ValueError(f"hit_time must be >= 0, got {hit_time}")
        self.env = env
        if sanitize:
            # Imported here: repro.checks imports the kernel, which would
            # cycle through repro.sim at module import time.
            from ..checks.sanitizer import SimSanitizer

            policy = SimSanitizer(policy)
        self.policy = policy
        self.array = array
        self.hit_time = hit_time
        self.log = ResponseLog(histogram=response_histogram)

    def get_chunk(
        self, stripe: int, cell: Cell, priority: int | None = None
    ) -> Generator:
        """Process generator: obtain one chunk through the cache."""
        env = self.env
        start = env.now
        hit = self.policy.request((stripe, cell), priority=priority)
        if hit:
            yield env.timeout(self.hit_time)
        else:
            yield from self.array.read_chunk(stripe, cell)
        self.log.record(env.now - start, hit)
