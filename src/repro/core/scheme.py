"""Recovery-scheme generation (paper §III-A step 1, Figures 2–3).

Given the set of failed chunks of a partial stripe error, a *recovery
scheme* assigns one parity chain to each failed chunk; reconstructing the
chunk then requires fetching every surviving member of its chain.

Three strategies are implemented:

* ``typical`` — every failed chunk uses its horizontal chain (the paper's
  Figure 2(a) baseline, after Patterson's original RAID recovery).
* ``fbf`` — the paper's strategy: loop the three directions (horizontal,
  diagonal, anti-diagonal) across consecutive failed chunks so that the
  selected chains overlap (Figure 2(b), Figure 3).  Among several valid
  chains of the looped direction, the one overlapping most with already
  selected chains is chosen.
* ``greedy`` — an ablation that ignores the direction loop and always
  picks the chain (any direction) adding the fewest *new* chunks to the
  fetch set.  Unlike the round-robin loop, this never fetches more unique
  chunks than ``typical`` (the horizontal chain is always a candidate) —
  relevant for adjuster codes (STAR, HDD1), where diagonal chains are
  longer and round-robin can cost extra I/O on short errors.

A chain is *eligible* for a failed chunk only if it contains no other
failed chunk at all — even one recovered earlier in the plan.  The strict
rule keeps every fetched chunk a plain read of intact data (no re-reading
of freshly-recovered chunks whose on-disk copy is stale), and it is always
satisfiable for the paper's single-disk partial stripe errors because each
horizontal chain touches any column exactly once.  Error patterns spanning
several disks may be rejected with :class:`UnrecoverableError`; those are
whole-stripe reconstruction territory (handled at the payload level by
:func:`repro.codes.decode`), not partial stripe recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Literal, Sequence

from ..codes.layout import Cell, CodeLayout, Direction, ParityChain

__all__ = [
    "SchemeMode",
    "ChainAssignment",
    "RecoveryPlan",
    "UnrecoverableError",
    "generate_plan",
    "DIRECTION_LOOP",
]

SchemeMode = Literal["typical", "fbf", "greedy"]

#: the paper's direction loop order.
DIRECTION_LOOP: tuple[Direction, ...] = (
    Direction.HORIZONTAL,
    Direction.DIAGONAL,
    Direction.ANTIDIAGONAL,
)


class UnrecoverableError(ValueError):
    """No eligible chain exists for some failed chunk."""


@dataclass(frozen=True)
class ChainAssignment:
    """One failed chunk and the parity chain chosen to rebuild it."""

    failed_cell: Cell
    chain: ParityChain

    @property
    def reads(self) -> tuple[Cell, ...]:
        """Surviving chain members to fetch, in deterministic order."""
        return tuple(sorted(self.chain.others(self.failed_cell)))


@dataclass(frozen=True)
class RecoveryPlan:
    """A complete recovery scheme for one partial stripe error."""

    layout: CodeLayout
    mode: str
    assignments: tuple[ChainAssignment, ...]

    @property
    def failed_cells(self) -> tuple[Cell, ...]:
        return tuple(a.failed_cell for a in self.assignments)

    @cached_property
    def chain_share_count(self) -> dict[Cell, int]:
        """For each cell to fetch: how many selected chains reference it.

        This is the quantity FBF's priorities are derived from (paper
        Table II).  Failed cells themselves are never fetched (eligible
        chains exclude them), so every counted cell is a surviving chunk.
        """
        counts: dict[Cell, int] = {}
        for a in self.assignments:
            for cell in a.reads:
                counts[cell] = counts.get(cell, 0) + 1
        return counts

    @cached_property
    def request_sequence(self) -> tuple[Cell, ...]:
        """Every chunk-read the controller issues, in order.

        Chains are processed in assignment order; within a chain, reads go
        in sorted cell order.  Shared chunks appear once per referencing
        chain — the repeats are exactly the cache-hit opportunities FBF
        targets.
        """
        return tuple(cell for a in self.assignments for cell in a.reads)

    @property
    def unique_reads(self) -> int:
        """Distinct chunks that must come from disk at least once."""
        return len(self.chain_share_count)

    @property
    def total_requests(self) -> int:
        return len(self.request_sequence)

    def direction_histogram(self) -> dict[Direction, int]:
        hist = {d: 0 for d in Direction}
        for a in self.assignments:
            hist[a.chain.direction] += 1
        return hist


def _eligible_chains(
    layout: CodeLayout, cell: Cell, failed: set[Cell]
) -> list[ParityChain]:
    """Chains containing ``cell`` and no other failed cell."""
    return [
        ch
        for ch in layout.chains_for(cell)
        if not (ch.cells & failed) - {cell}
    ]


def _overlap(chain: ParityChain, cell: Cell, needed: set[Cell]) -> int:
    return len((chain.cells - {cell}) & needed)


def _pick(
    candidates: Sequence[ParityChain],
    cell: Cell,
    needed: set[Cell],
) -> ParityChain:
    """Max overlap with already-needed cells; deterministic tie-breaks."""
    return max(
        candidates,
        key=lambda ch: (
            _overlap(ch, cell, needed),
            -len(ch.cells),  # fewer new fetches on overlap ties
            -DIRECTION_LOOP.index(ch.direction),
            -ch.index,
        ),
    )


def generate_plan(
    layout: CodeLayout,
    failed_cells: Iterable[Cell],
    mode: SchemeMode = "fbf",
) -> RecoveryPlan:
    """Build the recovery scheme for ``failed_cells`` under ``mode``.

    Failed cells are processed in sorted order (top-to-bottom within a
    column — the order a controller walks a contiguous error).  Raises
    :class:`UnrecoverableError` if some chunk has no eligible chain, i.e.
    the error pattern cannot be repaired chain-by-chain (never the case
    for the paper's single-disk partial stripe errors).
    """
    if mode not in ("typical", "fbf", "greedy"):
        raise ValueError(f"unknown scheme mode {mode!r}")
    cells = sorted(set(failed_cells))
    if not cells:
        raise ValueError("no failed cells given")
    valid = set(layout.all_cells)
    for cell in cells:
        if cell not in valid:
            raise KeyError(f"failed cell {cell} is not a used cell of {layout.name}")

    failed = set(cells)
    needed: set[Cell] = set()
    assignments: list[ChainAssignment] = []
    for i, cell in enumerate(cells):
        candidates = _eligible_chains(layout, cell, failed)
        if not candidates:
            raise UnrecoverableError(
                f"{layout.name}: no eligible parity chain for {cell} "
                f"(failed={sorted(failed)})"
            )
        if mode == "typical":
            preferred = [
                ch for ch in candidates if ch.direction is Direction.HORIZONTAL
            ]
            chosen = (
                min(preferred, key=lambda ch: ch.index)
                if preferred
                else _pick(candidates, cell, needed)
            )
        elif mode == "fbf":
            want = DIRECTION_LOOP[i % len(DIRECTION_LOOP)]
            for offset in range(len(DIRECTION_LOOP)):
                direction = DIRECTION_LOOP[
                    (DIRECTION_LOOP.index(want) + offset) % len(DIRECTION_LOOP)
                ]
                in_dir = [ch for ch in candidates if ch.direction is direction]
                if in_dir:
                    chosen = _pick(in_dir, cell, needed)
                    break
        else:  # greedy: fewest new fetches, then most overlap
            chosen = min(
                candidates,
                key=lambda ch: (
                    len(ch.cells - needed - {cell}),
                    -_overlap(ch, cell, needed),
                    DIRECTION_LOOP.index(ch.direction),
                    ch.index,
                ),
            )
        assignments.append(ChainAssignment(cell, chosen))
        needed |= chosen.cells - {cell}
    return RecoveryPlan(layout=layout, mode=mode, assignments=tuple(assignments))
