"""Priority definition (paper §III-A step 1, Tables II–III).

Each chunk fetched during recovery is assigned a priority equal to the
number of selected parity chains that reference it, saturated at 3:

===========  ===============================  ===============
priority     shared parity chains             reduced I/Os
===========  ===============================  ===============
3            three or more                    up to 2
2            two                              up to 1
1            one                              0
===========  ===============================  ===============

Chunks absent from the dictionary (e.g. application I/O mixed into the
recovery stream) default to priority 1 — they cannot save any recovery
I/O, so FBF treats them like ordinary single-use blocks.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterator

from ..codes.layout import Cell
from .scheme import RecoveryPlan

__all__ = ["MAX_PRIORITY", "PriorityDictionary", "priority_of_count"]

MAX_PRIORITY = 3


def priority_of_count(shared_chains: int) -> int:
    """Map a chain-share count to the paper's 1..3 priority scale."""
    if shared_chains < 1:
        raise ValueError(f"share count must be >= 1, got {shared_chains}")
    return min(shared_chains, MAX_PRIORITY)


class PriorityDictionary(Mapping):
    """Immutable cell → priority mapping for one recovery plan.

    Behaves as a mapping with a default of 1 through :meth:`lookup`,
    and records the underlying share counts for analysis (Table III
    reproduction, STAR's >3-references adjusters, ...).
    """

    def __init__(self, plan: RecoveryPlan):
        self.plan = plan
        self._counts: dict[Cell, int] = dict(plan.chain_share_count)
        self._prio: dict[Cell, int] = {
            cell: priority_of_count(n) for cell, n in self._counts.items()
        }

    @classmethod
    def from_plan(cls, plan: RecoveryPlan) -> "PriorityDictionary":
        return cls(plan)

    # -- Mapping protocol --------------------------------------------------
    def __getitem__(self, cell: Cell) -> int:
        return self._prio[cell]

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._prio)

    def __len__(self) -> int:
        return len(self._prio)

    # -- convenience ---------------------------------------------------------
    def lookup(self, cell: Cell) -> int:
        """Priority with the paper's default of 1 for unknown chunks."""
        return self._prio.get(cell, 1)

    def share_count(self, cell: Cell) -> int:
        """Raw number of selected chains referencing ``cell`` (0 if none)."""
        return self._counts.get(cell, 0)

    def cells_at(self, priority: int) -> tuple[Cell, ...]:
        """All cells holding a given priority, sorted (Table III rows)."""
        return tuple(
            sorted(c for c, p in self._prio.items() if p == priority)
        )

    def histogram(self) -> dict[int, int]:
        hist = {1: 0, 2: 0, 3: 0}
        for p in self._prio.values():
            hist[p] += 1
        return hist

    def table(self) -> str:
        """Render the paper's Table III format for this plan."""
        lines = ["Priority | Chunks", "---------+-------"]
        for prio in (3, 2, 1):
            cells = ", ".join(f"C{c}" for c in self.cells_at(prio))
            lines.append(f"{prio:>8} | {cells or '(none)'}")
        return "\n".join(lines)
