"""The Favorable Block First replacement policy (paper §III-A, Algorithm 1).

Three LRU queues, one per priority.  A fetched chunk is attached to the
queue matching its priority (``Queue3`` for chunks shared by three or more
selected parity chains, ``Queue2`` for two, ``Queue1`` for one).  The two
rules that distinguish FBF:

* **Replacement** — when space is needed, evict from ``Queue1`` first,
  then ``Queue2``, then ``Queue3`` (each popping its LRU end).  High
  priority chunks stay resident even if they have not been touched for a
  while (paper Figure 7).
* **Demotion on hit** — a hit consumes one of the chunk's expected
  rereferences, so the chunk steps down one queue: Queue3 → Queue2 →
  Queue1; hits in Queue1 just refresh recency (paper Figure 6).

Priorities arrive per request as the ``priority`` hint (the simulators
look them up in the current :class:`~repro.core.priorities.PriorityDictionary`);
requests without a hint default to priority 1, matching the paper's
handling of application I/O during reconstruction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from .policy import CachePolicy, Key
from .priorities import MAX_PRIORITY

__all__ = ["FBFCache"]


class FBFCache(CachePolicy):
    """Favorable Block First: priority queues with demote-on-hit.

    Two ablation knobs beyond the paper's Algorithm 1:

    * ``demote_on_hit=False`` — sticky priorities (chunks never leave
      their original queue);
    * ``n_queues`` — more than the paper's three queues, so chunks with
      share counts above 3 (STAR's adjusters) can be ranked among
      themselves instead of saturating at Queue3.  Hints above
      ``n_queues`` are capped as priorities above 3 are in the paper.
    """

    __slots__ = ("demote_on_hit", "n_queues", "_queues", "_queue_of")

    name = "fbf"

    def __init__(
        self,
        capacity: int,
        demote_on_hit: bool = True,
        n_queues: int = MAX_PRIORITY,
    ):
        if n_queues < 1:
            raise ValueError(f"n_queues must be >= 1, got {n_queues}")
        super().__init__(capacity)
        self.demote_on_hit = demote_on_hit
        self.n_queues = n_queues
        # queue index 1..n_queues; each OrderedDict is LRU-first -> MRU-last.
        self._queues: dict[int, OrderedDict[Key, None]] = {
            q: OrderedDict() for q in range(1, n_queues + 1)
        }
        self._queue_of: dict[Key, int] = {}

    # -- introspection -------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._queue_of

    def __len__(self) -> int:
        return len(self._queue_of)

    def queue_of(self, key: Key) -> int:
        """Which queue (1..3) the block currently sits in."""
        return self._queue_of[key]

    def queue_contents(self, priority: int) -> tuple[Key, ...]:
        """Keys of one queue, LRU to MRU (test/debug hook)."""
        return tuple(self._queues[priority])

    def _clear(self) -> None:
        for q in self._queues.values():
            q.clear()
        self._queue_of.clear()

    # -- algorithm ------------------------------------------------------------
    def _normalize_priority(self, priority: int | None) -> int:
        if priority is None:
            return 1
        if not isinstance(priority, int):
            raise TypeError(f"priority must be an int, got {priority!r}")
        if priority < 1:
            raise ValueError(f"priority must be >= 1, got {priority}")
        return min(priority, self.n_queues)

    def _attach(self, key: Key, queue: int) -> None:
        self._queues[queue][key] = None
        self._queue_of[key] = queue

    def _detach(self, key: Key) -> int:
        queue = self._queue_of.pop(key)
        del self._queues[queue][key]
        return queue

    def _evict(self) -> Key:
        # Replacement policy: Queue1 first, then Queue2, then Queue3, ...
        for queue in range(1, self.n_queues + 1):
            q = self._queues[queue]
            if q:
                victim, _ = q.popitem(last=False)
                del self._queue_of[victim]
                self.stats.evictions += 1
                return victim
        raise RuntimeError("evict called on an empty cache")  # pragma: no cover

    def request(self, key: Key, priority: int | None = None) -> bool:
        if key in self._queue_of:
            self.stats.hits += 1
            queue = self._queue_of[key]
            if self.demote_on_hit and queue > 1:
                self._detach(key)
                self._attach(key, queue - 1)
            else:
                # Queue1 hit: push to the MRU end (Algorithm 1 PushToEnd).
                self._queues[queue].move_to_end(key)
            return True
        self.stats.misses += 1
        if self.capacity == 0:
            return False
        if len(self._queue_of) >= self.capacity:
            self._evict()
        self._attach(key, self._normalize_priority(priority))
        return False

    def request_many(
        self, keys: Sequence[Key], priorities: Iterable[int] | None = None
    ) -> None:
        # request()/_attach/_detach/_evict inlined with the queue maps in
        # locals (grid replay hot path): same demote-on-hit, same
        # Queue1-first eviction scan, same priority normalization — the
        # grid-pass property tests pin it to the per-request path.
        queue_of = self._queue_of
        capacity = self.capacity
        stats = self.stats
        demote = self.demote_on_hit
        n_queues = self.n_queues
        get_queue = queue_of.get
        # 1-based queue list: one dict hash per attach/demote/evict saved.
        qlist = [None] + [self._queues[i] for i in range(1, n_queues + 1)]
        scan = qlist[1:]
        hits = misses = evictions = 0
        if priorities is None:
            priorities = (None,) * len(keys)
        for key, priority in zip(keys, priorities):
            queue = get_queue(key)
            if queue is not None:
                hits += 1
                if demote and queue > 1:
                    del qlist[queue][key]
                    queue -= 1
                    qlist[queue][key] = None
                    queue_of[key] = queue
                else:
                    qlist[queue].move_to_end(key)
                continue
            misses += 1
            if capacity == 0:
                continue
            if len(queue_of) >= capacity:
                for q in scan:
                    if q:
                        victim, _ = q.popitem(last=False)
                        del queue_of[victim]
                        evictions += 1
                        break
            if priority is None:
                queue = 1
            elif priority.__class__ is int and 0 < priority:
                queue = priority if priority < n_queues else n_queues
            else:
                queue = self._normalize_priority(priority)
            qlist[queue][key] = None
            queue_of[key] = queue
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
