"""Replacement-policy interface shared by every cache in the package.

Lives in ``repro.core`` (layer 0) so both the concrete policies in
``repro.cache`` and FBF itself in ``repro.core.fbf_cache`` can depend on
it without an upward import; ``repro.cache.base`` re-exports it for the
historical import path.

A policy manages a fixed number of *block slots* (capacity counted in
chunks, matching the paper's cache-size axis divided by the 32 KB chunk
size).  The single entry point is :meth:`CachePolicy.request`: present a
block key, learn whether it hit, and let the policy update its state —
installing the block on a miss and evicting if needed.

``priority`` is an optional per-request hint carrying FBF's priority value
(the number of parity chains sharing the chunk, capped at 3).  Classic
policies ignore it, which is exactly the paper's point of comparison.

Keys are arbitrary hashables; the simulators use ``(stripe, row, column)``
tuples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

__all__ = ["CacheStats", "CachePolicy", "SimpleCachePolicy"]

Key = Hashable


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters for one policy instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over requests; 0.0 before any request."""
        total = self.requests
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0


class CachePolicy(ABC):
    """Abstract replacement policy over ``capacity`` block slots."""

    __slots__ = ("capacity", "stats")

    #: registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()

    @abstractmethod
    def request(self, key: Key, priority: int | None = None) -> bool:
        """Access ``key``; return True on hit.  On miss the block is
        fetched and installed (evicting if the cache is full)."""

    def request_many(
        self, keys: Sequence[Key], priorities: Iterable[int] | None = None
    ) -> None:
        """Replay a batch of requests; only the stats are observable after.

        The grid replay's hot path.  This generic version just loops
        :meth:`request`; the policies on the paper's Figure 8 grid
        override it with the same per-request logic inlined into one
        tight loop (decision-for-decision identical — the grid-pass
        property tests enforce it against the per-request path).
        """
        request = self.request
        if priorities is None:
            for key in keys:
                request(key)
        else:
            for key, priority in zip(keys, priorities):
                request(key, priority)

    @abstractmethod
    def __contains__(self, key: Key) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    def reset(self) -> None:
        """Drop all cached blocks and zero the statistics."""
        self.stats.reset()
        self._clear()

    @abstractmethod
    def _clear(self) -> None: ...

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(capacity={self.capacity}, len={len(self)})"


class SimpleCachePolicy(CachePolicy):
    """Template for policies without ghost state.

    Subclasses implement ``_lookup``/``_on_hit``/``_admit``/``_evict``;
    the request flow, capacity-zero handling, and stats accounting live
    here once.
    """

    __slots__ = ()

    def request(self, key: Key, priority: int | None = None) -> bool:
        if key in self:
            self.stats.hits += 1
            self._on_hit(key)
            return True
        self.stats.misses += 1
        if self.capacity == 0:
            return False
        if len(self) >= self.capacity:
            self._evict()
            self.stats.evictions += 1
        self._admit(key, priority)
        return False

    @abstractmethod
    def _on_hit(self, key: Key) -> None: ...

    @abstractmethod
    def _admit(self, key: Key, priority: int | None) -> None: ...

    @abstractmethod
    def _evict(self) -> Key:
        """Remove and return one victim block."""
