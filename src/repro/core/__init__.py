"""FBF core: recovery schemes, priorities, and the FBF cache policy.

This package is the paper's primary contribution:

* :func:`generate_plan` — build a recovery scheme ("typical", "fbf", or
  "greedy") for a partial stripe error.
* :class:`PriorityDictionary` — the per-plan chunk → priority map
  (paper Table II/III).
* :class:`FBFCache` — the three-queue, demote-on-hit replacement policy
  (paper Algorithm 1).
"""

from .fbf_cache import FBFCache
from .priorities import MAX_PRIORITY, PriorityDictionary, priority_of_count
from .scheme import (
    DIRECTION_LOOP,
    ChainAssignment,
    RecoveryPlan,
    SchemeMode,
    UnrecoverableError,
    generate_plan,
)

__all__ = [
    "FBFCache",
    "MAX_PRIORITY",
    "PriorityDictionary",
    "priority_of_count",
    "DIRECTION_LOOP",
    "ChainAssignment",
    "RecoveryPlan",
    "SchemeMode",
    "UnrecoverableError",
    "generate_plan",
]
