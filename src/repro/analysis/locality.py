"""Locality statistics of error traces.

Quantifies the spatial/temporal structure the paper's §II-C cites —
"between 20% to 60% of all errors have a neighbor within a distance of
less than 10 sectors" — for any trace, synthetic or imported, closing the
loop between the workload generators and the studies that motivated them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..workloads.errors import PartialStripeError

__all__ = ["LocalityStats", "trace_locality"]


@dataclass(frozen=True)
class LocalityStats:
    """Spatial/temporal locality summary of one error trace."""

    n_errors: int
    #: fraction of errors with another error within `neighbor_distance`
    #: stripes (any disk) — the Schroeder et al. statistic.
    spatial_neighbor_fraction: float
    neighbor_distance: int
    #: fraction of inter-arrival gaps below `burst_threshold` seconds.
    temporal_burst_fraction: float
    burst_threshold: float
    mean_interarrival: float
    median_stripe_gap: float

    def in_field_band(self) -> bool:
        """True if spatial locality falls in the cited 20-60% band."""
        return 0.20 <= self.spatial_neighbor_fraction <= 0.60


def trace_locality(
    errors: Sequence[PartialStripeError],
    neighbor_distance: int = 10,
    burst_threshold: float | None = None,
) -> LocalityStats:
    """Measure the locality of an error trace.

    ``burst_threshold`` defaults to one tenth of the mean inter-arrival
    time — gaps far below the mean are what "burst" means operationally.
    """
    if len(errors) < 2:
        raise ValueError("need at least 2 errors to measure locality")
    if neighbor_distance < 1:
        raise ValueError(f"neighbor_distance must be >= 1, got {neighbor_distance}")
    errors = sorted(errors)
    stripes = np.array(sorted(e.stripe for e in errors))
    gaps_sorted = np.diff(stripes)

    # spatial: nearest other error in stripe space, per error
    has_neighbor = 0
    for i in range(len(stripes)):
        nearest = min(
            gaps_sorted[i - 1] if i > 0 else np.inf,
            gaps_sorted[i] if i < len(gaps_sorted) else np.inf,
        )
        if nearest <= neighbor_distance:
            has_neighbor += 1

    times = np.array([e.time for e in errors])
    inter = np.diff(times)
    mean_inter = float(inter.mean()) if len(inter) else 0.0
    threshold = (
        burst_threshold if burst_threshold is not None else mean_inter / 10.0
    )
    burst_fraction = float((inter <= threshold).mean()) if len(inter) else 0.0

    return LocalityStats(
        n_errors=len(errors),
        spatial_neighbor_fraction=has_neighbor / len(errors),
        neighbor_distance=neighbor_distance,
        temporal_burst_fraction=burst_fraction,
        burst_threshold=float(threshold),
        mean_interarrival=mean_inter,
        median_stripe_gap=float(np.median(gaps_sorted)) if len(gaps_sorted) else 0.0,
    )
