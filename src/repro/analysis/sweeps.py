"""Sweep-curve analytics: plateaus, peak gains, crossovers.

Figure-level summaries the paper states in prose ("the hit ratio ...
remains stable after cache size exceeds a specific number", "the stable
point of cache size is postponed as well") extracted programmatically
from :class:`~repro.bench.experiments.SweepPoint` rows, so benchmark
assertions and EXPERIMENTS.md can cite exact numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # annotation-only: keeps analysis below bench in the layer DAG
    from ..bench.experiments import SweepPoint

__all__ = [
    "NUMERIC_METRICS",
    "PanelSummary",
    "summarize_panel",
    "stable_point",
    "peak_gain",
]


#: SweepPoint columns a curve can be computed over.  Everything else on a
#: row (experiment/code/policy labels, scheme_mode) is categorical.
NUMERIC_METRICS: tuple[str, ...] = (
    "hit_ratio",
    "disk_reads",
    "avg_response_time",
    "reconstruction_time",
    "overhead_ms",
    "overhead_percent",
)


def _metric_value(point: SweepPoint, metric: str) -> float:
    """``getattr`` guarded so a bad metric name fails loudly and clearly.

    Without the guard, a label field (e.g. ``metric="policy"``) slips
    through ``getattr`` and only explodes later as a bare ``TypeError``
    deep inside the relative-span arithmetic of :func:`stable_point`.
    """
    if metric not in NUMERIC_METRICS:
        raise ValueError(
            f"metric {metric!r} is not a numeric SweepPoint metric; "
            f"valid metrics: {', '.join(NUMERIC_METRICS)}"
        )
    return getattr(point, metric)


def _series(
    points: Sequence[SweepPoint], policy: str, metric: str
) -> list[tuple[float, float]]:
    out = sorted(
        (p.cache_mb, _metric_value(p, metric)) for p in points if p.policy == policy
    )
    if not out:
        raise ValueError(f"no points for policy {policy!r}")
    return out


def stable_point(
    points: Sequence[SweepPoint],
    policy: str,
    metric: str = "hit_ratio",
    tolerance: float = 0.01,
) -> float:
    """Smallest cache size from which the metric stays within ``tolerance``
    (relative) of its final value — the paper's "stable point"."""
    series = _series(points, policy, metric)
    final = series[-1][1]
    span = max(abs(final), 1e-12)
    for i, (size, value) in enumerate(series):
        if all(abs(v - final) / span <= tolerance for _, v in series[i:]):
            return size
    return series[-1][0]  # pragma: no cover - loop always returns


def peak_gain(
    points: Sequence[SweepPoint],
    metric: str = "hit_ratio",
    higher_better: bool = True,
) -> tuple[float, float]:
    """(cache size, gain) where FBF's absolute advantage over the best
    baseline peaks."""
    sizes = sorted({p.cache_mb for p in points})
    best_size, best_gain = sizes[0], float("-inf")
    for size in sizes:
        vals = {
            p.policy: _metric_value(p, metric) for p in points if p.cache_mb == size
        }
        if "fbf" not in vals or len(vals) < 2:
            continue
        others = [v for k, v in vals.items() if k != "fbf"]
        gain = (
            vals["fbf"] - max(others) if higher_better else min(others) - vals["fbf"]
        )
        if gain > best_gain:
            best_size, best_gain = size, gain
    return best_size, best_gain


@dataclass(frozen=True)
class PanelSummary:
    """One (code, p) panel's headline numbers."""

    code: str
    p: int
    fbf_stable_point_mb: float
    best_baseline_stable_point_mb: float
    peak_gain_mb: float
    peak_gain_value: float

    @property
    def fbf_plateaus_earlier(self) -> bool:
        return self.fbf_stable_point_mb <= self.best_baseline_stable_point_mb


def summarize_panel(
    points: Sequence[SweepPoint],
    metric: str = "hit_ratio",
    tolerance: float = 0.01,
) -> PanelSummary:
    """Summarize one (code, p) panel of a figure sweep."""
    panels = {(p.code, p.p) for p in points}
    if len(panels) != 1:
        raise ValueError(f"expected one panel, got {sorted(panels)}")
    code, p = min(panels)  # singleton (checked above); min() is order-stable
    baselines = sorted({pt.policy for pt in points} - {"fbf"})
    if not baselines:
        raise ValueError("no baseline policies in panel")
    baseline_stables = [
        stable_point(points, b, metric, tolerance) for b in baselines
    ]
    size, gain = peak_gain(points, metric)
    return PanelSummary(
        code=code,
        p=p,
        fbf_stable_point_mb=stable_point(points, "fbf", metric, tolerance),
        best_baseline_stable_point_mb=min(baseline_stables),
        peak_gain_mb=size,
        peak_gain_value=gain,
    )
