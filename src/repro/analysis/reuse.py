"""Reuse-distance (stack-distance) analysis of request streams.

Mattson's classic result: an LRU cache of capacity ``C`` hits a request
iff the request's *reuse distance* — the number of distinct blocks
referenced since the previous access to the same block — is strictly less
than ``C``.  One pass over a trace therefore yields the exact LRU
hit-ratio curve for *every* cache size simultaneously.

This explains FBF analytically: a chunk shared by two chains is
rereferenced after roughly one chain's worth of distinct chunks, so LRU
needs capacity ≈ chain length to catch it, while FBF pins it with two
blocks of Queue2.  :func:`recovery_reuse_profile` computes the
distribution of reuse distances per FBF priority class to make that
argument quantitative.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..codes.layout import CodeLayout
from ..core.priorities import PriorityDictionary
from ..core.scheme import SchemeMode, generate_plan

__all__ = [
    "reuse_distances",
    "lru_hit_curve",
    "RecoveryReuseProfile",
    "recovery_reuse_profile",
]

INFINITE = -1  # marker for first-ever references


def reuse_distances(stream: Iterable[Hashable]) -> list[int]:
    """Reuse distance of every request (``INFINITE`` for cold misses).

    O(N log N)-ish via the standard tree-free formulation: track each
    block's last position and count distinct blocks since then with a
    position-indexed set scan.  Streams here are short (recovery traces),
    so a transparent implementation beats a Fenwick tree.
    """
    last_seen: dict[Hashable, int] = {}
    accesses: list[Hashable] = []
    out: list[int] = []
    for i, key in enumerate(stream):
        accesses.append(key)
        prev = last_seen.get(key)
        if prev is None:
            out.append(INFINITE)
        else:
            out.append(len(set(accesses[prev + 1 : i])))
        last_seen[key] = i
    return out


def lru_hit_curve(
    stream: Sequence[Hashable], capacities: Iterable[int]
) -> dict[int, float]:
    """Exact LRU hit ratio for each capacity, from one distance pass."""
    distances = reuse_distances(stream)
    n = len(distances)
    hist = Counter(d for d in distances if d != INFINITE)
    curve: dict[int, float] = {}
    for cap in capacities:
        if cap < 0:
            raise ValueError(f"capacity must be >= 0, got {cap}")
        hits = sum(count for d, count in hist.items() if d < cap)
        curve[cap] = hits / n if n else 0.0
    return curve


@dataclass(frozen=True)
class RecoveryReuseProfile:
    """Reuse structure of one recovery plan's request stream."""

    total_requests: int
    cold_misses: int
    #: reuse distances of rereferences, keyed by the chunk's FBF priority.
    distances_by_priority: dict[int, tuple[int, ...]]

    @property
    def rereferences(self) -> int:
        return self.total_requests - self.cold_misses

    def min_lru_capacity_for_all_hits(self) -> int:
        """Smallest LRU cache catching every rereference of this plan."""
        all_d = [d for ds in self.distances_by_priority.values() for d in ds]
        return max(all_d) + 1 if all_d else 0


def recovery_reuse_profile(
    layout: CodeLayout,
    failed_cells,
    mode: SchemeMode = "fbf",
) -> RecoveryReuseProfile:
    """Profile the reuse structure of one partial stripe recovery."""
    plan = generate_plan(layout, failed_cells, mode)
    priorities = PriorityDictionary(plan)
    stream = plan.request_sequence
    distances = reuse_distances(stream)
    by_prio: dict[int, list[int]] = {}
    cold = 0
    for cell, dist in zip(stream, distances):
        if dist == INFINITE:
            cold += 1
        else:
            by_prio.setdefault(priorities[cell], []).append(dist)
    return RecoveryReuseProfile(
        total_requests=len(stream),
        cold_misses=cold,
        distances_by_priority={k: tuple(v) for k, v in by_prio.items()},
    )
