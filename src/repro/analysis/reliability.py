"""Reliability modelling: MTTDL and the window of vulnerability.

The paper motivates FBF through reliability: partial stripe errors
"contribute to the excessive mean time to data loss (MTTDL)", and slow
recovery "enlarges the window of vulnerability (WOV)".  This module makes
that argument quantitative with the standard Markov models:

* :func:`mttdl_birth_death` — expected absorption time of a birth-death
  chain with failure rates ``(n-k) * lam`` and repair rate ``mu`` per
  degraded state; data loss absorbs at ``m+1`` concurrent failures for an
  ``m``-failure-tolerant array.
* :func:`mttdl_3dft` — the 3DFT specialization (absorbs at 4 failures).
* :func:`wov_improvement` — how a faster reconstruction (e.g. FBF vs LRU,
  paper Figure 11) shrinks the window of vulnerability and scales MTTDL.

Rates are per hour, matching the usual MTBF bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "mttdl_birth_death",
    "mttdl_3dft",
    "ReliabilityComparison",
    "wov_improvement",
]


def mttdl_birth_death(
    n_disks: int,
    disk_mtbf_hours: float,
    repair_hours: float,
    fault_tolerance: int = 3,
) -> float:
    """Expected hours to data loss for an ``fault_tolerance``-failure array.

    Transient states ``k = 0..fault_tolerance`` count concurrent failures;
    state ``fault_tolerance + 1`` (data loss) absorbs.  Failures arrive at
    ``(n - k) / mtbf``; repair completes at ``1 / repair_hours`` from any
    degraded state (single repair crew, the conservative assumption).
    MTTDL solves ``t_k = 1/r_k + sum_j P(k->j) t_j`` by a dense linear
    system — exact, no closed-form approximations.
    """
    if n_disks <= fault_tolerance:
        raise ValueError(
            f"need more than {fault_tolerance} disks, got {n_disks}"
        )
    if disk_mtbf_hours <= 0 or repair_hours <= 0:
        raise ValueError("mtbf and repair time must be positive")
    if fault_tolerance < 0:
        raise ValueError(f"fault_tolerance must be >= 0, got {fault_tolerance}")
    lam = 1.0 / disk_mtbf_hours
    mu = 1.0 / repair_hours
    m = fault_tolerance
    # Generator matrix over transient states 0..m.
    q = np.zeros((m + 1, m + 1))
    for k in range(m + 1):
        fail_rate = (n_disks - k) * lam
        out = fail_rate
        if k + 1 <= m:
            q[k, k + 1] = fail_rate
        if k > 0:
            q[k, k - 1] = mu
            out += mu
        q[k, k] = -out
    # E[absorption time] t solves Q t = -1.
    t = np.linalg.solve(q, -np.ones(m + 1))
    return float(t[0])


def mttdl_3dft(n_disks: int, disk_mtbf_hours: float, repair_hours: float) -> float:
    """MTTDL of a triple-disk-failure-tolerant array."""
    return mttdl_birth_death(n_disks, disk_mtbf_hours, repair_hours, fault_tolerance=3)


@dataclass(frozen=True)
class ReliabilityComparison:
    """MTTDL impact of one reconstruction-time improvement."""

    baseline_repair_hours: float
    improved_repair_hours: float
    baseline_mttdl_hours: float
    improved_mttdl_hours: float

    @property
    def wov_reduction_percent(self) -> float:
        return 100.0 * (
            1.0 - self.improved_repair_hours / self.baseline_repair_hours
        )

    @property
    def mttdl_gain_factor(self) -> float:
        return self.improved_mttdl_hours / self.baseline_mttdl_hours


def wov_improvement(
    n_disks: int,
    disk_mtbf_hours: float,
    baseline_repair_hours: float,
    improved_repair_hours: float,
    fault_tolerance: int = 3,
) -> ReliabilityComparison:
    """Quantify how a faster recovery shrinks the WOV and grows MTTDL.

    Feed it the reconstruction times of two cache policies (e.g. LRU and
    FBF from :func:`repro.sim.run_reconstruction`) to convert the paper's
    Figure 11 into a reliability statement.
    """
    if improved_repair_hours > baseline_repair_hours:
        raise ValueError(
            "improved repair time exceeds baseline; swap the arguments"
        )
    return ReliabilityComparison(
        baseline_repair_hours=baseline_repair_hours,
        improved_repair_hours=improved_repair_hours,
        baseline_mttdl_hours=mttdl_birth_death(
            n_disks, disk_mtbf_hours, baseline_repair_hours, fault_tolerance
        ),
        improved_mttdl_hours=mttdl_birth_death(
            n_disks, disk_mtbf_hours, improved_repair_hours, fault_tolerance
        ),
    )
