"""Analytical companions to the simulators.

* :mod:`repro.analysis.reuse` — Mattson reuse-distance profiling; exact
  LRU hit-ratio curves; the per-priority reuse structure that explains
  FBF's advantage.
* :mod:`repro.analysis.reliability` — Markov MTTDL models and
  window-of-vulnerability accounting.
* :mod:`repro.analysis.io_model` — exact expected read counts per error
  under the paper's workload model.
"""

from .io_model import IOExpectation, expected_reads, shape_table
from .reliability import (
    ReliabilityComparison,
    mttdl_3dft,
    mttdl_birth_death,
    wov_improvement,
)
from .reuse import (
    INFINITE,
    RecoveryReuseProfile,
    lru_hit_curve,
    recovery_reuse_profile,
    reuse_distances,
)
from .locality import LocalityStats, trace_locality
from .sweeps import PanelSummary, peak_gain, stable_point, summarize_panel

__all__ = [
    "IOExpectation",
    "expected_reads",
    "shape_table",
    "ReliabilityComparison",
    "mttdl_3dft",
    "mttdl_birth_death",
    "wov_improvement",
    "INFINITE",
    "RecoveryReuseProfile",
    "lru_hit_curve",
    "recovery_reuse_profile",
    "reuse_distances",
    "PanelSummary",
    "peak_gain",
    "stable_point",
    "summarize_panel",
    "LocalityStats",
    "trace_locality",
]
