"""Exact expected-I/O model for partial stripe recovery.

Under the paper's workload model — error disk uniform over disks, length
uniform on ``[1, rows]``, start uniform over feasible rows — the expected
number of unique and total chunk reads per error is a finite sum over
error shapes.  Enumerating every shape through the actual planner gives
the *exact* expectation for each scheme mode, which:

* validates the trace simulator (sample means must converge to it), and
* quantifies the scheme-level I/O saving independent of any cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..codes.layout import CodeLayout
from ..core.scheme import SchemeMode, generate_plan

__all__ = ["IOExpectation", "expected_reads", "shape_table"]


@dataclass(frozen=True)
class IOExpectation:
    """Expected per-error read counts under the paper's error model."""

    code: str
    p: int
    mode: str
    expected_unique_reads: float
    expected_total_requests: float
    #: expected rereferences = total - unique (the cache-hit opportunity).
    @property
    def expected_rereferences(self) -> float:
        return self.expected_total_requests - self.expected_unique_reads

    @property
    def sharing_ratio(self) -> float:
        """Fraction of requests that are rereferences (the hit-ratio plateau)."""
        if self.expected_total_requests == 0:
            return 0.0
        return self.expected_rereferences / self.expected_total_requests


def shape_table(
    layout: CodeLayout, mode: SchemeMode = "fbf"
) -> dict[tuple[int, int, int], tuple[int, int]]:
    """(disk, start, length) -> (unique_reads, total_requests) for every shape."""
    table: dict[tuple[int, int, int], tuple[int, int]] = {}
    for disk in range(layout.num_disks):
        cells = layout.cells_on_disk(disk)
        rows = len(cells)
        for length in range(1, rows + 1):
            for start in range(0, rows - length + 1):
                failed = list(cells[start : start + length])
                plan = generate_plan(layout, failed, mode)
                table[(disk, start, length)] = (
                    plan.unique_reads,
                    plan.total_requests,
                )
    return table


def expected_reads(layout: CodeLayout, mode: SchemeMode = "fbf") -> IOExpectation:
    """Exact expectation over the paper's uniform error model.

    Matches :func:`repro.workloads.generate_errors`: disk ~ U[0, n),
    length ~ U[1, rows], start ~ U[0, rows - length].
    """
    table = shape_table(layout, mode)
    rows = layout.rows
    n = layout.num_disks
    e_unique = 0.0
    e_total = 0.0
    for (disk, start, length), (unique, total) in table.items():
        # P(disk) * P(length) * P(start | length)
        weight = (1.0 / n) * (1.0 / rows) * (1.0 / (rows - length + 1))
        e_unique += weight * unique
        e_total += weight * total
    return IOExpectation(
        code=layout.name,
        p=layout.p,
        mode=mode,
        expected_unique_reads=e_unique,
        expected_total_requests=e_total,
    )
