"""Diagnostic rendering for ``simlint`` (``repro-fbf check``).

Keeps the output format in one place: ``path:line:col: RULE-ID message``,
one violation per line, grouped by file, followed by a summary line.  The
format is the common compiler shape so editors and CI annotators parse it
for free.
"""

from __future__ import annotations

from typing import TextIO

from .framework import LintResult, Violation
from .rules import ALL_RULES

__all__ = ["render_violations", "render_summary", "render_rule_list", "write_report"]


def render_violations(violations: list[Violation]) -> str:
    return "\n".join(v.format() for v in violations)


def render_summary(result: LintResult) -> str:
    n = len(result.violations)
    parts = [
        f"simlint: {result.files_checked} files checked, "
        f"{n} violation{'s' if n != 1 else ''}"
    ]
    if result.suppressed:
        parts.append(f"{result.suppressed} suppressed")
    if n:
        by_rule: dict[str, int] = {}
        for v in result.violations:
            by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
        parts.append(
            ", ".join(f"{rule}={count}" for rule, count in sorted(by_rule.items()))
        )
    return " | ".join(parts)


def render_rule_list() -> str:
    lines = ["simlint rules (suppress with `# simlint: ignore[ID]`):", ""]
    for rule in ALL_RULES:
        scope = ", ".join(rule.scopes) if rule.scopes else "all files"
        lines.append(f"  {rule.rule_id}  {rule.summary}")
        lines.append(f"          scope: {scope}")
    return "\n".join(lines)


def write_report(result: LintResult, stream: TextIO) -> None:
    if result.violations:
        stream.write(render_violations(result.violations) + "\n")
    stream.write(render_summary(result) + "\n")
