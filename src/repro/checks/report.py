"""Diagnostic rendering for ``simlint`` (``repro-fbf check``).

Three output formats, one source of truth:

* **text** — ``path:line:col: RULE-ID message``, one violation per line,
  then a summary.  The common compiler shape, so editors and CI
  annotators parse it for free.
* **json** — the full :class:`~repro.checks.engine.CheckOutcome` as a
  machine-readable object (used by the microbenchmark and scripting).
* **sarif** — SARIF 2.1.0, the format GitHub code scanning ingests to
  annotate PR diffs inline.

Paths are shown relative to the working directory when possible so CI
annotations and editors resolve them against the repo root.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, TextIO

from .framework import LintResult, Violation

if TYPE_CHECKING:
    from .engine import CheckOutcome

__all__ = [
    "render_violations",
    "render_summary",
    "render_outcome_summary",
    "render_rule_list",
    "render_json",
    "render_sarif",
    "write_report",
    "write_outcome",
]


def _display_path(path: str) -> str:
    """Repo-relative when under the working directory, else unchanged."""
    try:
        return Path(path).resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path


def render_violations(violations: list[Violation]) -> str:
    shown = [
        Violation(
            rule_id=v.rule_id,
            path=_display_path(v.path),
            line=v.line,
            col=v.col,
            message=v.message,
            severity=v.severity,
            key=v.key,
        )
        for v in violations
    ]
    return "\n".join(v.format() for v in shown)


def render_summary(result: LintResult) -> str:
    n = len(result.violations)
    parts = [
        f"simlint: {result.files_checked} files checked, "
        f"{n} violation{'s' if n != 1 else ''}"
    ]
    if result.suppressed:
        parts.append(f"{result.suppressed} suppressed")
    if n:
        by_rule: dict[str, int] = {}
        for v in result.violations:
            by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
        parts.append(
            ", ".join(f"{rule}={count}" for rule, count in sorted(by_rule.items()))
        )
    return " | ".join(parts)


def render_outcome_summary(outcome: "CheckOutcome") -> str:
    n_err = len(outcome.errors)
    n_warn = len(outcome.warnings)
    head = (
        f"simlint: {outcome.files_checked} files checked "
        f"({outcome.files_analyzed} analyzed, rest cached), "
        f"{n_err} violation{'s' if n_err != 1 else ''}"
    )
    if n_warn:
        head += f", {n_warn} warning{'s' if n_warn != 1 else ''}"
    parts = [head]
    if outcome.suppressed:
        parts.append(f"{outcome.suppressed} suppressed")
    if outcome.baselined:
        parts.append(f"{outcome.baselined} baselined")
    if outcome.unused_baseline:
        parts.append(f"{len(outcome.unused_baseline)} stale baseline entries")
    if outcome.violations:
        by_rule: dict[str, int] = {}
        for v in outcome.violations:
            by_rule[v.rule_id] = by_rule.get(v.rule_id, 0) + 1
        parts.append(
            ", ".join(f"{rule}={count}" for rule, count in sorted(by_rule.items()))
        )
    return " | ".join(parts)


def render_rule_list() -> str:
    from .cli import active_rules  # late: cli imports this module too
    from .engine import UnusedSuppressionRule

    per_file, program = active_rules(None)
    lines = [
        "simlint rules (suppress with `# simlint: ignore[ID]` or "
        "`# simlint: disable=ID`):",
        "",
        "per-file rules:",
    ]
    for rule in per_file:
        scope = ", ".join(rule.scopes) if rule.scopes else "all files"
        lines.append(f"  {rule.rule_id}  {rule.summary}")
        lines.append(f"          scope: {scope}")
    lines.append("")
    lines.append("whole-program rules:")
    for prule in program:
        lines.append(f"  {prule.rule_id}  {prule.summary}")
    lines.append("")
    lines.append("engine diagnostics:")
    lines.append(
        f"  {UnusedSuppressionRule.rule_id}  {UnusedSuppressionRule.summary}"
    )
    return "\n".join(lines)


def render_json(outcome: "CheckOutcome") -> str:
    payload = {
        "files_checked": outcome.files_checked,
        "files_analyzed": outcome.files_analyzed,
        "suppressed": outcome.suppressed,
        "baselined": outcome.baselined,
        "unused_baseline": [list(fp) for fp in outcome.unused_baseline],
        "errors": len(outcome.errors),
        "warnings": len(outcome.warnings),
        "violations": [
            {
                "rule_id": v.rule_id,
                "path": _display_path(v.path),
                "line": v.line,
                "col": v.col,
                "severity": v.severity,
                "message": v.message,
                "key": v.key,
            }
            for v in outcome.violations
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def _sarif_rules(violations: Iterable[Violation]) -> list[dict]:
    from .cli import active_rules

    per_file, program = active_rules(None)
    summaries = {r.rule_id: r.summary for r in (*per_file, *program)}
    seen: dict[str, dict] = {}
    for v in violations:
        if v.rule_id not in seen:
            seen[v.rule_id] = {
                "id": v.rule_id,
                "shortDescription": {
                    "text": summaries.get(v.rule_id, v.rule_id)
                },
            }
    return [seen[k] for k in sorted(seen)]


def render_sarif(outcome: "CheckOutcome") -> str:
    """SARIF 2.1.0 log for GitHub code-scanning upload."""
    results = []
    for v in outcome.violations:
        results.append(
            {
                "ruleId": v.rule_id,
                "level": "error" if v.severity == "error" else "warning",
                "message": {"text": v.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _display_path(v.path),
                                "uriBaseId": "ROOT",
                            },
                            "region": {
                                "startLine": max(v.line, 1),
                                "startColumn": v.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "simlintKey": "|".join(v.fingerprint())
                },
            }
        )
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": (
                            "https://example.invalid/repro-fbf/simlint"
                        ),
                        "rules": _sarif_rules(outcome.violations),
                    }
                },
                "originalUriBaseIds": {"ROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2) + "\n"


def write_report(result: LintResult, stream: TextIO) -> None:
    if result.violations:
        stream.write(render_violations(result.violations) + "\n")
    stream.write(render_summary(result) + "\n")


def write_outcome(outcome: "CheckOutcome", stream: TextIO, fmt: str = "text") -> None:
    if fmt == "json":
        stream.write(render_json(outcome))
        return
    if fmt == "sarif":
        stream.write(render_sarif(outcome))
        return
    if outcome.violations:
        stream.write(render_violations(outcome.violations) + "\n")
    stream.write(render_outcome_summary(outcome) + "\n")
