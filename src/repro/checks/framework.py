"""Rule framework for ``simlint``, the simulator-aware static checker.

``simlint`` is a small AST-based analysis pass (stdlib :mod:`ast` only)
with rules specific to this reproduction: the headline numbers (hit
ratio, disk reads, reconstruction time) are only comparable across runs
and policies if the discrete-event kernel and every replacement policy
are deterministic and invariant-preserving.  Generic linters cannot see
those domain constraints; these rules encode them.

Vocabulary:

* a :class:`Rule` visits one module's AST and yields :class:`Violation`
  records;
* rules declare *scopes* — path fragments such as ``repro/sim`` — so a
  kernel-hygiene rule does not fire on reporting code;
* a violating line can be suppressed with ``# simlint: ignore`` (any
  rule) or ``# simlint: ignore[rule-id,...]`` (specific rules), which is
  the reviewed escape hatch for false positives.

The module is dependency-free and import-light so the CLI stays fast.
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Violation",
    "Rule",
    "LintResult",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ignore(?:\[([A-Za-z0-9_,\s-]+)\])?")


@dataclass(frozen=True)
class Violation:
    """One diagnostic: where, which rule, and what went wrong."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"


class Rule(ABC):
    """One named check over a module AST.

    Subclasses set :attr:`rule_id` (stable, used in suppressions and
    ``--select``), :attr:`summary` (one line for ``--list-rules``) and
    optionally :attr:`scopes` / :attr:`excludes` (posix path fragments;
    ``None`` scopes mean the rule applies to every file).
    """

    rule_id: str = ""
    summary: str = ""
    #: posix path fragments; the rule runs only on files containing one.
    scopes: tuple[str, ...] | None = None
    #: posix path fragments exempt even when in scope.
    excludes: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        posix = Path(path).as_posix()
        if any(fragment in posix for fragment in self.excludes):
            return False
        if self.scopes is None:
            return True
        return any(fragment in posix for fragment in self.scopes)

    @abstractmethod
    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        """Yield violations found in ``tree`` (parsed from ``path``)."""

    def violation(self, node: ast.AST, path: str, message: str) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    files_checked: int
    violations: list[Violation]
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.violations


def _suppressed_rules(source_lines: Sequence[str], line: int) -> tuple[str, ...] | None:
    """Suppression spec on ``line`` (1-based): () = all rules, or rule ids."""
    if not 1 <= line <= len(source_lines):
        return None
    match = _SUPPRESS_RE.search(source_lines[line - 1])
    if match is None:
        return None
    spec = match.group(1)
    if spec is None:
        return ()
    return tuple(part.strip() for part in spec.split(",") if part.strip())


def lint_source(
    source: str,
    path: str,
    rules: Iterable[Rule],
) -> tuple[list[Violation], int]:
    """Lint one module's source text; returns (violations, n_suppressed)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Violation(
                    rule_id="parse-error",
                    path=path,
                    line=exc.lineno or 0,
                    col=(exc.offset or 1) - 1,
                    message=f"could not parse file: {exc.msg}",
                )
            ],
            0,
        )
    source_lines = source.splitlines()
    violations: list[Violation] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for violation in rule.check(tree, path):
            spec = _suppressed_rules(source_lines, violation.line)
            if spec is not None and (not spec or violation.rule_id in spec):
                suppressed += 1
                continue
            violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations, suppressed


def lint_file(path: str | Path, rules: Iterable[Rule]) -> tuple[list[Violation], int]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), rules)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Sequence[str | Path], rules: Sequence[Rule]) -> LintResult:
    """Lint every python file under ``paths`` with ``rules``."""
    violations: list[Violation] = []
    suppressed = 0
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        found, skipped = lint_file(path, rules)
        violations.extend(found)
        suppressed += skipped
    return LintResult(files_checked=n_files, violations=violations, suppressed=suppressed)
