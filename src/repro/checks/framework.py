"""Rule framework for ``simlint``, the simulator-aware static checker.

``simlint`` is a small AST-based analysis pass (stdlib :mod:`ast` only)
with rules specific to this reproduction: the headline numbers (hit
ratio, disk reads, reconstruction time) are only comparable across runs
and policies if the discrete-event kernel and every replacement policy
are deterministic and invariant-preserving.  Generic linters cannot see
those domain constraints; these rules encode them.

Vocabulary:

* a :class:`Rule` visits one module's AST and yields :class:`Violation`
  records;
* rules declare *scopes* — path fragments such as ``repro/sim`` — so a
  kernel-hygiene rule does not fire on reporting code;
* a violating line can be suppressed with ``# simlint: ignore`` (any
  rule), ``# simlint: ignore[rule-id,...]`` or the equivalent
  ``# simlint: disable=rule-id,...`` (specific rules) — the reviewed
  escape hatch for false positives.  Suppressions that never match a
  violation are themselves flagged (SUP001) by the engine, so stale
  escape hatches do not accumulate.

Violations carry a ``severity`` (``"error"`` gates CI; ``"warning"``
informs) and a stable ``key`` used by the baseline file to identify a
finding across unrelated line-number churn.

The module is dependency-free and import-light so the CLI stays fast.
"""

from __future__ import annotations

import ast
import re
import tokenize
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Violation",
    "Rule",
    "LintResult",
    "FileAnalysis",
    "SuppressionComment",
    "lint_source",
    "analyze_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "scan_suppressions",
    "suppression_spec",
]

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(?:ignore(?:\[([A-Za-z0-9_,\s-]+)\])?"
    r"|disable=([A-Za-z0-9_,\s-]+))"
)


@dataclass(frozen=True)
class Violation:
    """One diagnostic: where, which rule, and what went wrong.

    ``severity`` is ``"error"`` (gates the exit code) or ``"warning"``.
    ``key`` is an optional stable fingerprint — e.g. an import edge
    ``"repro.sim.rebuild->repro.workloads.errors"`` — used by the
    baseline so a finding keeps its identity when line numbers move;
    empty means "identify by line".
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    key: str = ""

    def format(self) -> str:
        tag = "" if self.severity == "error" else f" {self.severity}:"
        return (
            f"{self.path}:{self.line}:{self.col + 1}:{tag}"
            f" {self.rule_id} {self.message}"
        )

    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: (rule, normalized path, key-or-line)."""
        return (self.rule_id, _normalize_path(self.path),
                self.key or f"L{self.line}")


def _normalize_path(path: str) -> str:
    """Path identity for baselines: posix, trimmed to start at ``src/``."""
    posix = Path(path).as_posix()
    marker = posix.rfind("src/")
    return posix[marker:] if marker >= 0 else posix


class Rule(ABC):
    """One named check over a module AST.

    Subclasses set :attr:`rule_id` (stable, used in suppressions and
    ``--select``), :attr:`summary` (one line for ``--list-rules``) and
    optionally :attr:`scopes` / :attr:`excludes` (posix path fragments;
    ``None`` scopes mean the rule applies to every file).
    """

    rule_id: str = ""
    summary: str = ""
    #: severity of this rule's violations: "error" or "warning".
    default_severity: str = "error"
    #: posix path fragments; the rule runs only on files containing one.
    scopes: tuple[str, ...] | None = None
    #: posix path fragments exempt even when in scope.
    excludes: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        posix = Path(path).as_posix()
        if any(fragment in posix for fragment in self.excludes):
            return False
        if self.scopes is None:
            return True
        return any(fragment in posix for fragment in self.scopes)

    @abstractmethod
    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        """Yield violations found in ``tree`` (parsed from ``path``)."""

    def violation(
        self, node: ast.AST, path: str, message: str, key: str = ""
    ) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.default_severity,
            key=key,
        )


@dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    files_checked: int
    violations: list[Violation]
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass(frozen=True)
class SuppressionComment:
    """One inline suppression comment: its line and the rules it names."""

    line: int
    rules: tuple[str, ...]  #: () = suppresses every rule on that line

    def covers(self, rule_id: str) -> bool:
        return not self.rules or rule_id in self.rules


def scan_suppressions(source_lines: Sequence[str]) -> tuple[SuppressionComment, ...]:
    """Every suppression comment in a file, in line order.

    Scans real ``#`` comment tokens, not raw lines, so a docstring that
    *mentions* the suppression syntax neither suppresses anything nor
    trips SUP001.  Falls back to a per-line regex when the file does not
    tokenize (it then also fails to parse, and gets a parse-error
    diagnostic anyway).
    """
    found: list[SuppressionComment] = []

    def add(line: int, text: str) -> None:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            return
        spec = match.group(1) or match.group(2)
        rules = (
            tuple(part.strip() for part in spec.split(",") if part.strip())
            if spec
            else ()
        )
        found.append(SuppressionComment(line=line, rules=rules))

    try:
        # tokenize's readline contract wants "\n"-terminated lines.
        feed = iter([line + "\n" for line in source_lines] + [""])
        tokens = tokenize.generate_tokens(feed.__next__)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                add(tok.start[0], tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        found.clear()
        for i, text in enumerate(source_lines, start=1):
            add(i, text)
    return tuple(found)


def suppression_spec(
    suppressions: Sequence[SuppressionComment], line: int
) -> SuppressionComment | None:
    for comment in suppressions:
        if comment.line == line:
            return comment
    return None


@dataclass
class FileAnalysis:
    """Full per-file lint outcome, including suppression bookkeeping.

    ``violations`` are the survivors; ``suppressed`` the ones an inline
    comment absorbed; ``used_suppression_lines`` records which comments
    did the absorbing (the engine extends this set when program-level
    rules hit suppressed lines, then flags the rest as SUP001).
    """

    path: str
    violations: list[Violation]
    suppressed: list[Violation]
    suppressions: tuple[SuppressionComment, ...]
    used_suppression_lines: set[int]


def analyze_source(
    source: str,
    path: str,
    rules: Iterable[Rule],
    tree: ast.Module | None = None,
) -> FileAnalysis:
    """Run per-file rules over one module with suppression tracking.

    Pass ``tree`` when the caller already parsed the file (the engine
    parses once for both linting and graph summarization).
    """
    suppressions = scan_suppressions(source.splitlines())
    try:
        if tree is None:
            tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return FileAnalysis(
            path=path,
            violations=[
                Violation(
                    rule_id="parse-error",
                    path=path,
                    line=exc.lineno or 0,
                    col=(exc.offset or 1) - 1,
                    message=f"could not parse file: {exc.msg}",
                )
            ],
            suppressed=[],
            suppressions=suppressions,
            used_suppression_lines=set(),
        )
    violations: list[Violation] = []
    suppressed: list[Violation] = []
    used: set[int] = set()
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for violation in rule.check(tree, path):
            comment = suppression_spec(suppressions, violation.line)
            if comment is not None and comment.covers(violation.rule_id):
                suppressed.append(violation)
                used.add(comment.line)
                continue
            violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return FileAnalysis(
        path=path,
        violations=violations,
        suppressed=suppressed,
        suppressions=suppressions,
        used_suppression_lines=used,
    )


def lint_source(
    source: str,
    path: str,
    rules: Iterable[Rule],
) -> tuple[list[Violation], int]:
    """Lint one module's source text; returns (violations, n_suppressed)."""
    analysis = analyze_source(source, path, rules)
    return analysis.violations, len(analysis.suppressed)


def lint_file(path: str | Path, rules: Iterable[Rule]) -> tuple[list[Violation], int]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), rules)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Sequence[str | Path], rules: Sequence[Rule]) -> LintResult:
    """Lint every python file under ``paths`` with ``rules``."""
    violations: list[Violation] = []
    suppressed = 0
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        found, skipped = lint_file(path, rules)
        violations.extend(found)
        suppressed += skipped
    return LintResult(files_checked=n_files, violations=violations, suppressed=suppressed)
