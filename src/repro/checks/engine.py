"""The simlint engine: caching, parallelism, and whole-program assembly.

One ``repro-fbf check`` run is a pipeline:

1. **Collect** the target files (linted and summarized) and the usage
   roots (tests/benchmarks — summarized only, so dead-code analysis
   sees their references).
2. **Analyze** each file once — parse, run the per-file rules with
   suppression tracking, and build its
   :class:`~repro.checks.graph.ModuleSummary` — behind a per-file cache
   keyed by mtime+size with an sha256 fallback (a ``touch`` re-hashes
   but does not re-analyze).  Files missing from the cache fan out over
   a process pool when there are enough of them to pay for the workers.
3. **Assemble** the :class:`~repro.checks.graph.ProjectGraph` from the
   summaries and run the whole-program rules (ARCH/FLOW/API).
4. **Filter**: inline suppressions absorb program-rule findings too;
   suppression comments that absorbed nothing become SUP001 warnings;
   the committed baseline absorbs accepted findings last.

``files_analyzed`` counts real re-analyses, so a warm-cache re-run over
an unchanged tree reports 0 — the property the microbenchmark and CI
gate check.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from .baseline import Fingerprint, apply_baseline, default_baseline_path, load_baseline
from .framework import (
    FileAnalysis,
    Rule,
    SuppressionComment,
    Violation,
    analyze_source,
    iter_python_files,
    suppression_spec,
)
from .graph import ModuleSummary, ProjectGraph, module_name_for, summarize_module
from .program_rules import ProgramRule

__all__ = [
    "ENGINE_VERSION",
    "CheckSettings",
    "CheckOutcome",
    "UnusedSuppressionRule",
    "run_engine",
    "default_cache_path",
    "discover_usage_roots",
]

#: Bump to invalidate every cached per-file record (analysis format change).
ENGINE_VERSION = 2


class UnusedSuppressionRule(Rule):
    """SUP001: a suppression comment that no longer absorbs any finding.

    The finding itself is produced by the engine after both the per-file
    and whole-program passes (only then is "unused" known); this class
    exists so the rule has a stable id, a ``--list-rules`` entry, and a
    ``--select`` handle like every other rule.
    """

    rule_id = "SUP001"
    summary = "unused suppression comment: nothing on this line to suppress"
    default_severity = "warning"

    def check(self, tree, path):  # engine-driven; nothing per-AST
        return iter(())


@dataclass
class CheckSettings:
    """One engine run's configuration."""

    paths: Sequence[str | Path]
    rules: Sequence[Rule] = ()
    program_rules: Sequence[ProgramRule] = ()
    #: emit SUP001 for suppression comments that absorbed nothing
    report_unused_suppressions: bool = True
    #: None disables the baseline entirely
    baseline_path: Path | None = None
    #: None disables the cache
    cache_path: Path | None = None
    #: 0 = auto (parallel only when enough files need analysis)
    jobs: int = 0
    #: directories summarized for usage only (tests, benchmarks)
    usage_roots: Sequence[Path] = ()


@dataclass
class CheckOutcome:
    """Aggregate result of one engine run."""

    files_checked: int  #: target files linted
    files_analyzed: int  #: files actually (re-)parsed — 0 on a warm cache
    violations: list[Violation]  #: surviving findings, errors and warnings
    suppressed: int  #: findings absorbed by inline suppressions
    baselined: int  #: findings absorbed by the baseline file
    unused_baseline: list[Fingerprint] = field(default_factory=list)
    graph: ProjectGraph | None = None  #: for --update-api-manifest etc.
    #: every finding before the baseline was applied (for --update-baseline)
    prebaseline: list[Violation] = field(default_factory=list)

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> list[Violation]:
        return [v for v in self.violations if v.severity != "error"]

    @property
    def ok(self) -> bool:
        return not self.errors


def default_cache_path() -> Path:
    return Path(".simlint_cache.json")


def discover_usage_roots(targets: Sequence[str | Path]) -> list[Path]:
    """Conventional usage-only roots near the targets: tests/, benchmarks/.

    Looks beside each target directory and in the current directory, and
    drops candidates already inside a target (no double analysis).
    """
    target_dirs = [Path(t).resolve() for t in targets]
    candidates: list[Path] = []
    bases = {Path.cwd()}
    bases.update(t.parent for t in target_dirs)
    for base in sorted(bases):
        for name in ("tests", "benchmarks"):
            candidate = (base / name).resolve()
            if not candidate.is_dir():
                continue
            inside_target = any(
                candidate == t or t in candidate.parents for t in target_dirs
            )
            if not inside_target and candidate not in candidates:
                candidates.append(candidate)
    return candidates


# -- per-file analysis (cacheable unit) ----------------------------------------


def _violation_to_dict(v: Violation) -> dict:
    return {
        "rule_id": v.rule_id,
        "path": v.path,
        "line": v.line,
        "col": v.col,
        "message": v.message,
        "severity": v.severity,
        "key": v.key,
    }


def _violation_from_dict(d: Mapping) -> Violation:
    return Violation(**d)


def _analyze_file(path_str: str, rule_ids: tuple[str, ...], lint: bool) -> dict:
    """Analyze one file into a JSON-ready record.  Top-level: pool-safe."""
    from .rules import ALL_RULES  # local: workers import lazily

    rules = [r for r in ALL_RULES if r.rule_id in rule_ids] if lint else []
    source = Path(path_str).read_text(encoding="utf-8")
    posix = Path(path_str).as_posix()
    module = module_name_for(posix)
    try:
        tree: ast.Module | None = ast.parse(source, filename=posix)
    except SyntaxError:
        tree = None
    if tree is not None:
        summary = summarize_module(tree, posix, module)
    else:
        summary = ModuleSummary(module=module, path=posix)
    analysis = analyze_source(source, posix, rules, tree=tree)
    return {
        "summary": summary.to_dict(),
        "linted": lint,
        "violations": [_violation_to_dict(v) for v in analysis.violations],
        "suppressed": len(analysis.suppressed),
        "suppressions": [[c.line, list(c.rules)] for c in analysis.suppressions],
        "used_lines": sorted(analysis.used_suppression_lines),
    }


def _record_to_analysis(record: Mapping) -> tuple[ModuleSummary, FileAnalysis]:
    summary = ModuleSummary.from_dict(record["summary"])
    analysis = FileAnalysis(
        path=summary.path,
        violations=[_violation_from_dict(d) for d in record["violations"]],
        suppressed=[],
        suppressions=tuple(
            SuppressionComment(line=line, rules=tuple(rules))
            for line, rules in record["suppressions"]
        ),
        used_suppression_lines=set(record["used_lines"]),
    )
    # Suppressed violations are not replayed from cache (only the count
    # matters downstream); stash the count on the analysis via a list of
    # placeholders with the right length.
    analysis.suppressed = [None] * record["suppressed"]  # type: ignore[list-item]
    return summary, analysis


# -- the cache -----------------------------------------------------------------


def _file_fingerprint(path: Path) -> tuple[float, int]:
    stat = path.stat()
    return (stat.st_mtime, stat.st_size)


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _rule_signature(
    rules: Sequence[Rule], program_rules: Sequence[ProgramRule]
) -> str:
    ids = sorted(r.rule_id for r in rules)
    pids = sorted(r.rule_id for r in program_rules)
    blob = json.dumps([ENGINE_VERSION, ids, pids])
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class _FileCache:
    """mtime+size keyed per-file records with an sha256 second chance."""

    def __init__(self, path: Path | None, rule_sig: str) -> None:
        self.path = path
        self.rule_sig = rule_sig
        self.entries: dict[str, dict] = {}
        self.dirty = False
        if path is not None and path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                data = {}
            if data.get("rule_sig") == rule_sig:
                self.entries = data.get("files", {})

    def lookup(self, path: Path, need_lint: bool) -> dict | None:
        """The cached record for ``path`` if still valid, else None."""
        if self.path is None:
            return None
        entry = self.entries.get(str(path))
        if entry is None:
            return None
        record = entry["record"]
        if need_lint and not record["linted"]:
            return None
        mtime, size = _file_fingerprint(path)
        if entry["mtime"] == mtime and entry["size"] == size:
            return record
        if entry["size"] == size and entry["sha256"] == _sha256(path):
            # touched but unchanged: refresh the stamp, keep the record
            entry["mtime"] = mtime
            self.dirty = True
            return record
        return None

    def store(self, path: Path, record: dict) -> None:
        if self.path is None:
            return
        mtime, size = _file_fingerprint(path)
        self.entries[str(path)] = {
            "mtime": mtime,
            "size": size,
            "sha256": _sha256(path),
            "record": record,
        }
        self.dirty = True

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        payload = json.dumps(
            {"rule_sig": self.rule_sig, "files": self.entries}
        )
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            tmp.write_text(payload, encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            pass  # a read-only tree degrades to cold runs, not failures


# -- orchestration -------------------------------------------------------------


def _worker_count(jobs: int, n_files: int) -> int:
    if jobs > 1:
        return min(jobs, n_files)
    if jobs == 1:
        return 1
    # auto: a pool only pays off when there is real work to spread
    cpus = os.process_cpu_count() if hasattr(os, "process_cpu_count") else os.cpu_count()
    if n_files < 16 or not cpus or cpus <= 2:
        return 1
    return min(cpus - 1, 8, n_files)


def run_engine(settings: CheckSettings) -> CheckOutcome:
    targets = list(
        dict.fromkeys(p.resolve() for p in iter_python_files(list(settings.paths)))
    )
    target_set = set(targets)
    root_files = [
        p.resolve()
        for root in settings.usage_roots
        for p in iter_python_files([root])
        if p.resolve() not in target_set
    ]
    rule_ids = tuple(r.rule_id for r in settings.rules)
    cache = _FileCache(
        settings.cache_path, _rule_signature(settings.rules, settings.program_rules)
    )

    work: list[tuple[Path, bool]] = [(p, True) for p in targets]
    work += [(p, False) for p in root_files]
    records: dict[Path, dict] = {}
    to_analyze: list[tuple[Path, bool]] = []
    for path, lint in work:
        cached = cache.lookup(path, need_lint=lint)
        if cached is not None:
            records[path] = cached
        else:
            to_analyze.append((path, lint))

    workers = _worker_count(settings.jobs, len(to_analyze))
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                path: pool.submit(_analyze_file, str(path), rule_ids, lint)
                for path, lint in to_analyze
            }
            for path, fut in futures.items():
                records[path] = fut.result()
    else:
        for path, lint in to_analyze:
            records[path] = _analyze_file(str(path), rule_ids, lint)
    for path, _ in to_analyze:
        cache.store(path, records[path])
    cache.save()

    summaries: list[ModuleSummary] = []
    analyses: dict[str, FileAnalysis] = {}
    violations: list[Violation] = []
    suppressed = 0
    for path in [*targets, *root_files]:
        summary, analysis = _record_to_analysis(records[path])
        summaries.append(summary)
        if path in target_set:
            analyses[summary.path] = analysis
            violations.extend(analysis.violations)
            suppressed += len(analysis.suppressed)

    graph = ProjectGraph(summaries)
    used_lines: dict[str, set[int]] = {
        path: set(analysis.used_suppression_lines)
        for path, analysis in analyses.items()
    }
    for rule in settings.program_rules:
        for violation in rule.check(graph):
            analysis = analyses.get(Path(violation.path).as_posix())
            if analysis is not None:
                comment = suppression_spec(analysis.suppressions, violation.line)
                if comment is not None and comment.covers(violation.rule_id):
                    suppressed += 1
                    used_lines[analysis.path].add(comment.line)
                    continue
            violations.append(violation)

    if settings.report_unused_suppressions:
        sup_rule = UnusedSuppressionRule()
        for path, analysis in sorted(analyses.items()):
            for comment in analysis.suppressions:
                if comment.line not in used_lines[path]:
                    spec = (
                        f"[{', '.join(comment.rules)}]" if comment.rules else ""
                    )
                    violations.append(
                        Violation(
                            rule_id=sup_rule.rule_id,
                            path=path,
                            line=comment.line,
                            col=0,
                            message=(
                                f"suppression{spec} matches no finding on "
                                "this line; remove it"
                            ),
                            severity=sup_rule.default_severity,
                            key=f"unused{spec}",
                        )
                    )

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    prebaseline = list(violations)
    baselined = 0
    unused_baseline: list[Fingerprint] = []
    if settings.baseline_path is not None:
        baseline = load_baseline(settings.baseline_path)
        if baseline:
            violations, absorbed, unused_baseline = apply_baseline(
                violations, baseline
            )
            baselined = len(absorbed)

    return CheckOutcome(
        files_checked=len(targets),
        files_analyzed=len(to_analyze),
        violations=violations,
        suppressed=suppressed,
        baselined=baselined,
        unused_baseline=unused_baseline,
        graph=graph,
        prebaseline=prebaseline,
    )
