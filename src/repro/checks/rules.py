"""The ``simlint`` rule set: domain invariants of the FBF reproduction.

Rule ids are stable (used in ``# simlint: ignore[...]`` suppressions and
``repro-fbf check --select``):

=========  ==================================================================
id         checks
=========  ==================================================================
SIM001     no wall-clock calls (``time.time``/``time.sleep``/...) in
           simulator, policy, or code-construction modules — virtual time
           only (``time.perf_counter`` stays legal: it feeds the Table IV
           *measured* planning-overhead numbers, not simulated time)
SIM002     kernel process generators must only ``yield`` kernel events,
           never bare/literal values
DET001     no unseeded randomness: global ``random.*`` functions and
           legacy ``numpy.random.*`` calls are forbidden; use
           ``random.Random(seed)`` / ``numpy.random.default_rng(seed)``
DET002     no iteration over ``set``-typed values where order escapes
           (for/comprehensions/``list``/``tuple``/``enumerate``/...);
           wrap in ``sorted(...)`` or use an insertion-ordered dict
DET003     eviction/scheduling instance state must not be a ``set`` —
           use ``dict[K, None]`` / ``OrderedDict`` so any future
           iteration is insertion-ordered
DET004     host parallelism must never parameterise a simulation:
           ``os.cpu_count()`` / ``multiprocessing.cpu_count()`` are
           forbidden inside simulation modules, and everywhere their
           value may not flow into simulation entry points
           (``SimConfig``/``Scale``/``GridPoint``/...) — worker counts
           derived from the host are for scheduling (process pools)
           only, or results would differ per machine
POL001     no mutable class-level state (list/dict/set defaults) on cache
           policy modules — shared across instances, breaks run isolation
POL002     every ``CachePolicy`` subclass implements the ``base.py``
           interface exactly: a non-abstract ``name``, the required
           methods, and the ``request(self, key, priority=None)`` signature
GF2001     GF(2)/XOR purity in ``repro/codes``: no true division and no
           float dtypes in parity paths (XOR algebra is exact; floats
           would silently corrupt parity)
ENG001     no imports of the pre-unification replay modules
           (``repro.lrc.tracesim``) or their deleted entry points
           (``simulate_lrc_trace``/``LRCTraceResult``) — every replay goes
           through :mod:`repro.engine`
PERF001    no ``backend.build_plan(...)`` call sites outside
           :class:`~repro.engine.tracesim.PlanCache` — plans are built
           once per plan key and shared; a direct call silently forfeits
           the memo (and its Table IV hit accounting)
PERF002    no constant ``env.timeout(0)`` — a zero-delay wake-up should
           be ``env.schedule_now()``: same fast-lane ordering, but a
           pool-recycled plain event instead of a ``Timeout`` dressed up
           as a delay (kernel internals and tests exempt)
OBS001     no bare ``print()`` in ``repro`` library code — route output
           through :func:`repro.obs.emit` (or an explicit stream write)
           so reporting stays testable and obs-aware
=========  ==================================================================
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from .framework import Rule, Violation

__all__ = ["ALL_RULES", "default_rules", "rules_by_id"]

_SIM_SCOPES = ("repro/sim", "repro/core", "repro/cache", "repro/codes",
               "repro/engine", "repro/lrc")


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin for every import in the module."""
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def _resolve(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Dotted origin of a Name/Attribute chain, or None if unknown."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


class WallClockRule(Rule):
    """SIM001: simulated components must never read or block on real time."""

    rule_id = "SIM001"
    summary = "no wall-clock time (time.time/time.sleep/datetime.now) in sim code"
    scopes = _SIM_SCOPES

    _FORBIDDEN = (
        "time.time",
        "time.time_ns",
        "time.sleep",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    )

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        imports = _import_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve(node.func, imports)
            if dotted in self._FORBIDDEN:
                yield self.violation(
                    node,
                    path,
                    f"wall-clock call {dotted}() in simulation code; use the "
                    f"event kernel's virtual clock (env.now / env.timeout)",
                )


class YieldNonEventRule(Rule):
    """SIM002: a literal yield in a sim process is never a kernel event."""

    rule_id = "SIM002"
    summary = "sim process generators must yield kernel events, not literals"
    scopes = ("repro/sim",)

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Yield):
                continue
            if node.value is None or isinstance(node.value, ast.Constant):
                what = (
                    "a bare value"
                    if node.value is None
                    else f"literal {ast.unparse(node.value)}"
                )
                yield self.violation(
                    node,
                    path,
                    f"process yields {what}; kernel processes may only yield "
                    f"Event/Timeout/Process/AllOf (SimulationError at runtime)",
                )


class UnseededRandomRule(Rule):
    """DET001: all randomness must flow from an explicit seed."""

    rule_id = "DET001"
    summary = "no global random.* / legacy numpy.random.* calls (seed explicitly)"

    _NUMPY_ALLOWED = {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        imports = _import_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve(node.func, imports)
            if dotted is None:
                continue
            if dotted.startswith("random.") and dotted.count(".") == 1:
                fn = dotted.split(".", 1)[1]
                if fn not in ("Random", "SystemRandom"):
                    yield self.violation(
                        node,
                        path,
                        f"global {dotted}() shares interpreter-wide RNG state; "
                        f"use a random.Random(seed) instance",
                    )
            elif dotted.startswith("numpy.random."):
                fn = dotted.split(".", 2)[2].split(".")[0]
                if fn not in self._NUMPY_ALLOWED:
                    yield self.violation(
                        node,
                        path,
                        f"legacy numpy.random.{fn}() uses hidden global state; "
                        f"use numpy.random.default_rng(seed)",
                    )


_SET_TYPE_NAMES = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
_MUTABLE_SET_NAMES = {"set", "Set", "MutableSet"}


def _annotation_set_kind(annotation: ast.expr | None) -> str | None:
    """'mutable'/'frozen' if the annotation is a set type, else None."""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):  # typing.Set, typing.AbstractSet, ...
        name = node.attr
    if name in _SET_TYPE_NAMES:
        return "mutable" if name in _MUTABLE_SET_NAMES else "frozen"
    return None


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _target_key(node: ast.expr) -> str | None:
    """Stable key for a Name or ``self.attr`` target."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _enclosing_function_map(tree: ast.Module) -> dict[int, ast.AST | None]:
    """id(node) -> the innermost enclosing function def (None = module)."""
    scopes: dict[int, ast.AST | None] = {}

    def visit(node: ast.AST, scope: ast.AST | None) -> None:
        scopes[id(node)] = scope
        child_scope = (
            node if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) else scope
        )
        for child in ast.iter_child_nodes(node):
            visit(child, child_scope)

    visit(tree, None)
    return scopes


def _collect_set_names(
    tree: ast.Module, scopes: dict[int, ast.AST | None]
) -> set[tuple[int | None, str]]:
    """(scope, name) pairs declared or assigned as sets.

    Local names are tracked per enclosing function (a name reused as a
    list in another function must not be tainted); ``self.attr`` state is
    tracked module-wide because instance attributes cross method scopes.
    """
    names: set[tuple[int | None, str]] = set()

    def record(target: ast.expr, node: ast.AST) -> None:
        key = _target_key(target)
        if key is None:
            return
        if key.startswith("self."):
            names.add((None, key))
        else:
            scope = scopes.get(id(node))
            names.add((id(scope) if scope is not None else None, key))

    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            if _annotation_set_kind(node.annotation) is not None:
                record(node.target, node)
        elif isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                record(target, node)
    return names


class UnorderedIterationRule(Rule):
    """DET002: set iteration order is observable -> nondeterministic runs.

    CPython set iteration order depends on insertion history and hash
    randomization of the element values; any simulation decision fed by
    it silently varies between runs.
    """

    rule_id = "DET002"
    summary = "no iteration over set-typed values where order is observable"

    _ORDER_SENSITIVE_CALLS = {"list", "tuple", "iter", "enumerate", "reversed", "next"}
    #: consumers whose result does not depend on iteration order.
    _ORDER_INSENSITIVE_CALLS = {
        "any", "all", "sum", "min", "max", "len", "sorted", "set", "frozenset",
    }

    def _is_tracked_set(
        self,
        node: ast.expr,
        set_names: set[tuple[int | None, str]],
        scopes: dict[int, ast.AST | None],
    ) -> bool:
        if _is_set_expr(node):
            return True
        key = _target_key(node)
        if key is None:
            return False
        if (None, key) in set_names:
            return True
        scope = scopes.get(id(node))
        return scope is not None and (id(scope), key) in set_names

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        scopes = _enclosing_function_map(tree)
        set_names = _collect_set_names(tree, scopes)
        # Generator expressions consumed whole by an order-insensitive
        # builtin (any/all/sum/min/max/...) are fine; remember them.
        exempt_comps: set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_INSENSITIVE_CALLS
                and node.args
                and isinstance(node.args[0], (ast.GeneratorExp, ast.ListComp, ast.SetComp))
            ):
                exempt_comps.add(id(node.args[0]))
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                if self._is_tracked_set(node.iter, set_names, scopes):
                    yield self.violation(
                        node.iter,
                        path,
                        "for-loop over a set: iteration order is not "
                        "deterministic; wrap in sorted(...) or keep a "
                        "dict[K, None]",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if id(node) in exempt_comps:
                    continue
                for comp in node.generators:
                    if self._is_tracked_set(comp.iter, set_names, scopes):
                        yield self.violation(
                            comp.iter,
                            path,
                            "comprehension over a set leaks nondeterministic "
                            "order into an ordered result; wrap in sorted(...)",
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in self._ORDER_SENSITIVE_CALLS
                    and node.args
                    and self._is_tracked_set(node.args[0], set_names, scopes)
                ):
                    yield self.violation(
                        node,
                        path,
                        f"{node.func.id}() over a set produces a "
                        f"nondeterministic sequence; wrap in sorted(...)",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and not node.args
                    and self._is_tracked_set(node.func.value, set_names, scopes)
                ):
                    yield self.violation(
                        node,
                        path,
                        "set.pop() removes an arbitrary element; pick the "
                        "victim deterministically",
                    )


class CpuCountLeakRule(Rule):
    """DET004: host CPU topology may schedule work, never shape results.

    An ``os.cpu_count()`` that reaches a *simulated* parameter — the
    paper's SOR worker count, an error-trace size, a cache partition —
    silently makes every headline number a function of the machine the
    sweep ran on.  Feeding it to a ``ProcessPoolExecutor`` is fine: the
    engine guarantees scheduling cannot change row values.
    """

    rule_id = "DET004"
    summary = "cpu_count() must only size process pools, never simulation parameters"

    _CPU_FNS = (
        "os.cpu_count",
        "os.process_cpu_count",
        "multiprocessing.cpu_count",
    )
    #: constructors/functions whose arguments parameterise a simulation.
    _SIM_ENTRY_POINTS = {
        "SimConfig",
        "Scale",
        "GridPoint",
        "ErrorTraceConfig",
        "LRCWorkloadConfig",
        "simulate_cache_trace",
        "simulate_trace",
        "run_reconstruction",
        "run_timed_replay",
        "make_backend",
        "generate_errors",
        "generate_events",
        "generate_lrc_failures",
    }

    def _is_cpu_call(self, node: ast.expr, imports: dict[str, str]) -> bool:
        return (
            isinstance(node, ast.Call)
            and _resolve(node.func, imports) in self._CPU_FNS
        )

    def _contains_cpu_value(
        self, node: ast.expr, imports: dict[str, str], tainted: set[str]
    ) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in tainted:
                return True
            if self._is_cpu_call(sub, imports):
                return True
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        imports = _import_map(tree)
        in_sim_scope = any(
            fragment in Path(path).as_posix()
            for fragment in (*_SIM_SCOPES, "repro/workloads")
        )
        # Names assigned (anywhere in the module) from a cpu_count call.
        tainted: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and self._contains_cpu_value(
                node.value, imports, set()
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if in_sim_scope and self._is_cpu_call(node, imports):
                yield self.violation(
                    node,
                    path,
                    "cpu_count() in simulation code couples results to the "
                    "host machine; simulated worker counts must come from "
                    "the experiment Scale",
                )
                continue
            callee = None
            if isinstance(node.func, ast.Name):
                callee = node.func.id
            elif isinstance(node.func, ast.Attribute):
                callee = node.func.attr
            if callee not in self._SIM_ENTRY_POINTS:
                continue
            for arg in (*node.args, *(kw.value for kw in node.keywords)):
                if self._contains_cpu_value(arg, imports, tainted):
                    yield self.violation(
                        node,
                        path,
                        f"cpu_count()-derived value flows into {callee}(); "
                        f"host parallelism may size the process pool, never "
                        f"a simulation parameter",
                    )
                    break


class UnorderedStateRule(Rule):
    """DET003: ordered structures only for eviction/scheduling state.

    Even membership-only sets are a trap here: the moment someone iterates
    one (a new eviction heuristic, a debug dump feeding a decision), run
    results stop being reproducible.  ``dict[K, None]`` gives the same
    O(1) membership with insertion order guaranteed.
    """

    rule_id = "DET003"
    summary = "cache/kernel instance state must be insertion-ordered, not a set"
    scopes = ("repro/cache/", "repro/core/", "repro/sim/kernel.py", "repro/engine/")
    excludes = ("repro/cache/base.py", "repro/core/policy.py")

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.AnnAssign):
                continue
            key = _target_key(node.target)
            if key is None or not key.startswith("self."):
                continue
            if _annotation_set_kind(node.annotation) == "mutable":
                yield self.violation(
                    node,
                    path,
                    f"{key} is declared as a set; eviction/scheduling state "
                    f"must be insertion-ordered (use dict[K, None])",
                )


class MutableClassStateRule(Rule):
    """POL001: class-level mutables are shared across policy instances."""

    rule_id = "POL001"
    summary = "no mutable class-level defaults (list/dict/set) in policy modules"
    scopes = ("repro/cache/", "repro/core/", "repro/engine/")

    _MUTABLE_CALLS = {"list", "dict", "set", "OrderedDict", "defaultdict", "deque"}

    def _is_mutable_value(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in self._MUTABLE_CALLS
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            decorators = {
                d.id if isinstance(d, ast.Name) else getattr(d, "attr", None)
                for d in cls.decorator_list
            } | {
                d.func.id if isinstance(d.func, ast.Name) else getattr(d.func, "attr", None)
                for d in cls.decorator_list
                if isinstance(d, ast.Call)
            }
            if "dataclass" in decorators:
                continue  # dataclass fields go through field(default_factory=...)
            for stmt in cls.body:
                if isinstance(stmt, ast.Assign) and self._is_mutable_value(stmt.value):
                    names = ", ".join(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
                    yield self.violation(
                        stmt,
                        path,
                        f"class-level mutable default {names!r} on "
                        f"{cls.name} is shared by every instance; initialise "
                        f"it in __init__",
                    )


class PolicyInterfaceRule(Rule):
    """POL002: structural conformance of every policy to ``base.py``."""

    rule_id = "POL002"
    summary = "CachePolicy subclasses must match the base.py interface exactly"
    scopes = ("repro/cache/", "repro/core/", "repro/engine/")
    excludes = ("repro/cache/base.py", "repro/core/policy.py")

    _REQUIRED = {
        "CachePolicy": ("request", "__contains__", "__len__", "_clear"),
        "SimpleCachePolicy": ("_on_hit", "_admit", "_evict", "__contains__", "__len__", "_clear"),
    }

    @staticmethod
    def _base_kind(cls: ast.ClassDef) -> str | None:
        for base in cls.bases:
            name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
            if name in ("CachePolicy", "SimpleCachePolicy"):
                return name
        return None

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            kind = self._base_kind(cls)
            if kind is None:
                continue
            methods = {
                stmt.name: stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef)
            }
            # 1. registry name: a non-abstract string constant.
            name_value = None
            for stmt in cls.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "name"
                        for t in stmt.targets
                    )
                    and isinstance(stmt.value, ast.Constant)
                ):
                    name_value = stmt.value.value
            if not isinstance(name_value, str) or name_value in ("", "abstract"):
                yield self.violation(
                    cls,
                    path,
                    f"{cls.name} must define a non-abstract `name` class "
                    f"attribute (registry identity)",
                )
            # 2. required methods for its template.
            for required in self._REQUIRED[kind]:
                if required not in methods:
                    yield self.violation(
                        cls,
                        path,
                        f"{cls.name} ({kind} subclass) does not define "
                        f"required method {required}()",
                    )
            # 3. request() signature: (self, key, priority=None).
            request = methods.get("request")
            if request is not None:
                args = request.args
                names = [a.arg for a in args.posonlyargs + args.args]
                ok = (
                    names == ["self", "key", "priority"]
                    and len(args.defaults) == 1
                    and isinstance(args.defaults[0], ast.Constant)
                    and args.defaults[0].value is None
                    and args.vararg is None
                    and args.kwarg is None
                )
                if not ok:
                    yield self.violation(
                        request,
                        path,
                        f"{cls.name}.request must have signature "
                        f"(self, key, priority=None) so policies are "
                        f"interchangeable",
                    )


class GF2PurityRule(Rule):
    """GF2001: parity arithmetic is exact XOR algebra — keep floats out."""

    rule_id = "GF2001"
    summary = "no true division or float dtypes in repro/codes parity paths"
    scopes = ("repro/codes/",)
    # update.py reports averaged update-penalty statistics, not parity math.
    excludes = ("repro/codes/update.py",)

    _FLOAT_ATTRS = {"float16", "float32", "float64", "float128", "float_", "double"}

    def _is_float_dtype(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id == "float":
            return True
        if isinstance(node, ast.Attribute) and node.attr in self._FLOAT_ATTRS:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.startswith("float") or node.value in ("f2", "f4", "f8")
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
                node.op, ast.Div
            ):
                yield self.violation(
                    node,
                    path,
                    "true division in a GF(2) parity path produces floats; "
                    "use // or XOR algebra",
                )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "dtype" and self._is_float_dtype(kw.value):
                        yield self.violation(
                            node,
                            path,
                            "float dtype in a parity path; GF(2) math must "
                            "stay on integer dtypes (uint8/uint32)",
                        )
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"
                    and node.args
                    and self._is_float_dtype(node.args[0])
                ):
                    yield self.violation(
                        node,
                        path,
                        "astype(float...) in a parity path; GF(2) math must "
                        "stay on integer dtypes",
                    )


class LegacyReplayImportRule(Rule):
    """ENG001: the pre-unification replay world must stay deleted.

    ``repro.lrc.tracesim`` duplicated the trace replay and was removed
    when the unified engine landed; any import of it (absolute or
    relative) — or of its deleted entry points through ``repro.lrc`` —
    resurrects a second replay implementation and silently forks the
    numbers.  ``repro.sim.tracesim`` survives only as a thin adapter over
    :func:`repro.engine.simulate_trace`, so importing it stays legal.
    """

    rule_id = "ENG001"
    summary = "no imports of repro.lrc.tracesim or its deleted entry points"

    _DELETED_MODULE = "lrc.tracesim"
    _DELETED_NAMES = {"simulate_lrc_trace", "LRCTraceResult"}

    def _module_is_deleted(self, module: str | None, level: int) -> bool:
        if module is None:
            return False
        if level == 0:
            return module == f"repro.{self._DELETED_MODULE}"
        # relative: "from .tracesim import ..." inside repro/lrc, or
        # "from .lrc.tracesim import ..." / "from ..lrc.tracesim import ..."
        return module == self._DELETED_MODULE or module.endswith(
            f".{self._DELETED_MODULE}"
        )

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        inside_lrc = "repro/lrc/" in Path(path).as_posix()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == f"repro.{self._DELETED_MODULE}":
                        yield self.violation(
                            node,
                            path,
                            f"import of deleted module {alias.name}; use "
                            f"repro.engine.simulate_trace with an LRCBackend",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module
                if self._module_is_deleted(module, node.level) or (
                    inside_lrc and node.level == 1 and module == "tracesim"
                ):
                    yield self.violation(
                        node,
                        path,
                        f"import from deleted module "
                        f"{'.' * node.level}{module}; use repro.engine."
                        f"simulate_trace with an LRCBackend",
                    )
                    continue
                # deleted entry points re-exported nowhere: catch stale
                # "from repro.lrc import simulate_lrc_trace" too.
                from_lrc_pkg = (
                    module in ("repro.lrc", "lrc")
                    or (module is not None and module.endswith(".lrc"))
                    or (inside_lrc and node.level > 0 and module is None)
                )
                if from_lrc_pkg:
                    for alias in node.names:
                        if alias.name in self._DELETED_NAMES:
                            yield self.violation(
                                node,
                                path,
                                f"{alias.name} was deleted with "
                                f"repro.lrc.tracesim; use repro.engine."
                                f"simulate_trace with an LRCBackend",
                            )


class DirectPlanBuildRule(Rule):
    """PERF001: plans are built through the PlanCache memo, nowhere else.

    ``build_plan`` is deterministic per plan key, so every caller must go
    through :class:`~repro.engine.tracesim.PlanCache` (one shared build
    per key, with hit accounting feeding the Table IV overhead numbers).
    A direct ``backend.build_plan(error)`` rebuilds the plan on every
    event — the exact quadratic planning cost the paper's memoization
    remark rules out — and bypasses the shared-stream interning that the
    grid replay keys off the same memo.
    """

    rule_id = "PERF001"
    summary = "backend.build_plan() may only be called inside PlanCache"
    excludes = ("repro/engine/tracesim.py", "tests/")

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "build_plan"
            ):
                yield self.violation(
                    node,
                    path,
                    "direct build_plan() call bypasses the PlanCache memo; "
                    "construct a PlanCache(backend) and call .get(event)",
                )


class ZeroTimeoutRule(Rule):
    """PERF002: a constant zero delay is a hand-off, not a timeout.

    ``env.timeout(0)`` and ``env.schedule_now()`` fire at the same
    instant with the same FIFO ordering (both ride the kernel's
    same-time fast lane), but the timeout spelling obscures the intent
    and allocates/recycles a :class:`~repro.sim.kernel.Timeout` where a
    plain pooled event suffices.  Only *constant* zero arguments are
    flagged — ``env.timeout(delay)`` where ``delay`` may legitimately
    be zero at runtime is the normal timed path and stays untouched.
    The kernel itself (which defines both spellings) and tests (which
    pin the equivalence) are exempt.
    """

    rule_id = "PERF002"
    summary = "constant env.timeout(0) should be env.schedule_now()"
    excludes = ("repro/sim/kernel.py", "tests/")

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "timeout"
                and node.args
            ):
                continue
            first = node.args[0]
            if (
                isinstance(first, ast.Constant)
                and type(first.value) in (int, float)
                and first.value == 0
            ):
                yield self.violation(
                    node,
                    path,
                    "constant timeout(0) schedules a zero-delay wake-up "
                    "through the Timeout machinery; use env.schedule_now() "
                    "(same fast-lane ordering, pool-recycled plain event)",
                )


class BarePrintRule(Rule):
    """OBS001: library code never prints; output goes through repro.obs.

    A bare ``print()`` buried in library code cannot be captured,
    redirected, or silenced by callers, and it bypasses the obs
    reporting layer entirely.  :func:`repro.obs.emit` (or an explicit
    ``stream.write``) keeps every line routable — the ``repro-fbf``
    subcommands all report through it.
    """

    rule_id = "OBS001"
    summary = "no bare print() in repro library code; use repro.obs.emit"
    scopes = ("repro/",)
    excludes = ("repro/obs/console.py",)

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    node,
                    path,
                    "bare print() in library code; route output through "
                    "repro.obs.emit (or write to an explicit stream)",
                )


ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    YieldNonEventRule(),
    UnseededRandomRule(),
    UnorderedIterationRule(),
    CpuCountLeakRule(),
    UnorderedStateRule(),
    MutableClassStateRule(),
    PolicyInterfaceRule(),
    GF2PurityRule(),
    LegacyReplayImportRule(),
    DirectPlanBuildRule(),
    ZeroTimeoutRule(),
    BarePrintRule(),
)


def default_rules() -> tuple[Rule, ...]:
    return ALL_RULES


def rules_by_id() -> dict[str, object]:
    """Every selectable rule: per-file, whole-program, and SUP001.

    Values are heterogeneous (:class:`Rule` or
    :class:`~repro.checks.program_rules.ProgramRule`); the CLI splits
    them by type.  Imported lazily so plain ``lint_source`` users do not
    pay for the whole-program machinery.
    """
    from .engine import UnusedSuppressionRule
    from .program_rules import ALL_PROGRAM_RULES

    mapping: dict[str, object] = {rule.rule_id: rule for rule in ALL_RULES}
    for program_rule in ALL_PROGRAM_RULES:
        mapping[program_rule.rule_id] = program_rule
    sup = UnusedSuppressionRule()
    mapping[sup.rule_id] = sup
    return mapping
