"""``repro-fbf check`` — run simlint from the command line.

Exit status is the CI contract: 0 when the tree is clean, 1 when any
violation is found (diagnostics on stdout, one per line), 2 for usage
errors such as an unknown rule id.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Sequence, TextIO

from .framework import lint_paths
from .report import render_rule_list, write_report
from .rules import ALL_RULES, rules_by_id

__all__ = ["run_check"]


def run_check(
    paths: Sequence[str],
    select: Sequence[str] | None = None,
    list_rules: bool = False,
    stream: TextIO | None = None,
) -> int:
    """Lint ``paths`` (files or directories); returns the exit status."""
    out = stream if stream is not None else sys.stdout
    if list_rules:
        out.write(render_rule_list() + "\n")
        return 0
    rules = ALL_RULES
    if select:
        known = rules_by_id()
        unknown = [rule_id for rule_id in select if rule_id not in known]
        if unknown:
            out.write(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(known)}\n"
            )
            return 2
        rules = tuple(known[rule_id] for rule_id in select)
    targets = list(paths) or ["src"]
    missing = [p for p in targets if not Path(p).exists()]
    if missing:
        out.write(f"no such file or directory: {', '.join(missing)}\n")
        return 2
    result = lint_paths(targets, rules)
    write_report(result, out)
    return 0 if result.ok else 1
