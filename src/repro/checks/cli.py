"""``repro-fbf check`` — run simlint from the command line.

Exit status is the CI contract: 0 when the tree has no unbaselined
errors (warnings never gate), 1 when any error survives, 2 for usage
errors such as an unknown rule id.

Beyond linting, two maintenance verbs rewrite committed state:

* ``--update-baseline`` regenerates the accepted-findings file from the
  current tree, preserving tracking comments for entries that still
  match;
* ``--update-api-manifest`` regenerates the per-namespace
  ``repro.api.v2`` surface manifests that API001 checks against.

Both re-run the (cache-warm) analysis afterwards so the reported
outcome reflects the refreshed files.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Sequence, TextIO

from .baseline import default_baseline_path, render_baseline, load_baseline
from .engine import (
    CheckSettings,
    UnusedSuppressionRule,
    default_cache_path,
    discover_usage_roots,
    run_engine,
)
from .program_rules import (
    ALL_PROGRAM_RULES,
    V2_NAMESPACES,
    ProgramRule,
    default_manifest_path,
    render_manifest,
)
from .report import render_rule_list, write_outcome
from .rules import ALL_RULES, rules_by_id

__all__ = ["run_check", "active_rules"]

FORMATS = ("text", "json", "sarif")


def active_rules(select: Sequence[str] | None):
    """(per-file rules, program rules) for a ``--select`` list (None = all)."""
    if select is None:
        return ALL_RULES, ALL_PROGRAM_RULES
    wanted = set(select)
    per_file = tuple(r for r in ALL_RULES if r.rule_id in wanted)
    program = tuple(r for r in ALL_PROGRAM_RULES if r.rule_id in wanted)
    return per_file, program


def run_check(
    paths: Sequence[str],
    select: Sequence[str] | None = None,
    list_rules: bool = False,
    stream: TextIO | None = None,
    *,
    fmt: str = "text",
    no_cache: bool = False,
    cache_dir: str | None = None,
    jobs: int = 0,
    baseline: str | None = None,
    no_baseline: bool = False,
    update_baseline: bool = False,
    update_api_manifest: bool = False,
) -> int:
    """Lint ``paths`` (files or directories); returns the exit status."""
    out = stream if stream is not None else sys.stdout
    if list_rules:
        out.write(render_rule_list() + "\n")
        return 0
    if fmt not in FORMATS:
        out.write(f"unknown format {fmt!r}; known: {', '.join(FORMATS)}\n")
        return 2
    if select:
        known = rules_by_id()
        unknown = [rule_id for rule_id in select if rule_id not in known]
        if unknown:
            out.write(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(known)}\n"
            )
            return 2
    targets = list(paths) or ["src"]
    missing = [p for p in targets if not Path(p).exists()]
    if missing:
        out.write(f"no such file or directory: {', '.join(missing)}\n")
        return 2

    per_file, program = active_rules(select)
    report_unused = select is None or UnusedSuppressionRule.rule_id in select
    baseline_path = None
    if not no_baseline:
        baseline_path = Path(baseline) if baseline else default_baseline_path()
    cache_path = None
    if not no_cache:
        cache_path = (
            Path(cache_dir) / "simlint_cache.json"
            if cache_dir
            else default_cache_path()
        )
        if cache_path.parent and not cache_path.parent.exists():
            cache_path.parent.mkdir(parents=True, exist_ok=True)
    settings = CheckSettings(
        paths=targets,
        rules=per_file,
        program_rules=program,
        report_unused_suppressions=report_unused,
        baseline_path=baseline_path,
        cache_path=cache_path,
        jobs=jobs,
        usage_roots=discover_usage_roots(targets),
    )
    outcome = run_engine(settings)

    refreshed = False
    if update_api_manifest:
        for namespace, module in V2_NAMESPACES.items():
            manifest = default_manifest_path(namespace)
            manifest.parent.mkdir(parents=True, exist_ok=True)
            manifest.write_text(
                render_manifest(outcome.graph, api_module=module),
                encoding="utf-8",
            )
            out.write(f"wrote API manifest: {manifest}\n")
        refreshed = True
    if update_baseline:
        target = baseline_path if baseline_path is not None else default_baseline_path()
        previous = load_baseline(target)
        target.write_text(
            render_baseline(outcome.prebaseline, previous), encoding="utf-8"
        )
        out.write(
            f"wrote baseline: {target} "
            f"({len(outcome.prebaseline)} accepted findings)\n"
        )
        refreshed = True
    if refreshed:
        outcome = run_engine(settings)  # warm cache: only re-applies rules

    write_outcome(outcome, out, fmt)
    return 0 if outcome.ok else 1
