"""Machine-checked guardrails for the FBF reproduction.

Two halves, one goal — keep every future change deterministic and
invariant-preserving so the paper's comparisons stay trustworthy:

* **simlint** (:mod:`~repro.checks.framework`, :mod:`~repro.checks.rules`,
  :mod:`~repro.checks.report`, :mod:`~repro.checks.cli`): an AST-based
  static pass with domain rules — kernel wall-clock hygiene, seeded
  randomness, no observable set ordering, cache-policy interface
  conformance, GF(2) purity.  Run it as ``repro-fbf check [paths]``.
* **runtime sanitizer** (:mod:`~repro.checks.sanitizer`): wrappers that
  assert FBF's Algorithm 1 invariants (single residency, demotion order,
  capacity accounting) and the kernel's event-order stability during a
  live simulation; enabled with ``sanitize=True`` on the simulators.
"""

from .framework import LintResult, Rule, Violation, lint_paths, lint_source
from .report import render_rule_list, render_summary, render_violations
from .rules import ALL_RULES, default_rules, rules_by_id
from .sanitizer import InvariantViolation, SanitizedEnvironment, SimSanitizer
from .cli import run_check

__all__ = [
    "ALL_RULES",
    "InvariantViolation",
    "LintResult",
    "Rule",
    "SanitizedEnvironment",
    "SimSanitizer",
    "Violation",
    "default_rules",
    "lint_paths",
    "lint_source",
    "render_rule_list",
    "render_summary",
    "render_violations",
    "rules_by_id",
    "run_check",
]
