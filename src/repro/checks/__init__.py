"""Machine-checked guardrails for the FBF reproduction.

Two halves, one goal — keep every future change deterministic and
invariant-preserving so the paper's comparisons stay trustworthy:

* **simlint** (:mod:`~repro.checks.framework`, :mod:`~repro.checks.rules`,
  :mod:`~repro.checks.report`, :mod:`~repro.checks.cli`): an AST-based
  static pass with domain rules — kernel wall-clock hygiene, seeded
  randomness, no observable set ordering, cache-policy interface
  conformance, GF(2) purity.  Run it as ``repro-fbf check [paths]``.
* **whole-program simlint** (:mod:`~repro.checks.graph`,
  :mod:`~repro.checks.flow`, :mod:`~repro.checks.program_rules`,
  :mod:`~repro.checks.engine`, :mod:`~repro.checks.baseline`): a
  project-wide module/import graph with seed-provenance dataflow and
  obs-guard reachability, cross-module rules (layer DAG, dead defs,
  seed flow, guard discipline, API manifest), inline suppressions with
  unused detection, a committed baseline, per-file result caching with
  parallel analysis, and text/json/sarif output.
* **runtime sanitizer** (:mod:`~repro.checks.sanitizer`): wrappers that
  assert FBF's Algorithm 1 invariants (single residency, demotion order,
  capacity accounting) and the kernel's event-order stability during a
  live simulation; enabled with ``sanitize=True`` on the simulators.
"""

from .framework import (
    FileAnalysis,
    LintResult,
    Rule,
    Violation,
    analyze_source,
    lint_paths,
    lint_source,
)
from .baseline import apply_baseline, load_baseline, render_baseline
from .engine import CheckOutcome, CheckSettings, run_engine
from .graph import ModuleSummary, ProjectGraph, summarize_source
from .program_rules import ALL_PROGRAM_RULES, ProgramRule
from .report import (
    render_rule_list,
    render_sarif,
    render_summary,
    render_violations,
)
from .rules import ALL_RULES, default_rules, rules_by_id
from .sanitizer import InvariantViolation, SanitizedEnvironment, SimSanitizer
from .cli import run_check

__all__ = [
    "ALL_PROGRAM_RULES",
    "ALL_RULES",
    "CheckOutcome",
    "CheckSettings",
    "FileAnalysis",
    "InvariantViolation",
    "LintResult",
    "ModuleSummary",
    "ProgramRule",
    "ProjectGraph",
    "Rule",
    "SanitizedEnvironment",
    "SimSanitizer",
    "Violation",
    "analyze_source",
    "apply_baseline",
    "default_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_baseline",
    "render_rule_list",
    "render_sarif",
    "render_summary",
    "render_violations",
    "rules_by_id",
    "run_check",
    "run_engine",
    "summarize_source",
]
