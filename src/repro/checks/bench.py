"""The simlint self-benchmark: cold vs warm-cache analysis wall time.

The engine's caching contract (``engine.py``) is that a warm re-run over
an unchanged tree analyzes zero files, so ``repro-fbf check`` in a
pre-commit hook or editor loop costs file-stat time, not re-parse time.
This bench measures both runs over the real ``src`` tree and writes a
``BENCH_simlint.json`` payload; the committed copy in ``benchmarks/`` is
the perf baseline, gated in CI exactly like the grid-replay bench:

* the warm run must analyze **zero** files (the functional half);
* the cold/warm *speedup ratio* must stay within tolerance of the
  committed baseline (ratios of two timings from the same machine and
  run, so the gate is machine-independent);
* optionally (``--time-tolerance``) the raw wall times too, for
  same-machine comparisons.

Run directly: ``python -m repro.checks.bench --out BENCH_simlint.json``
or ``--check benchmarks/BENCH_simlint.json`` for the CI gate.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Sequence

from ..bench.engine import _git_rev
from ..obs import emit
from .baseline import default_baseline_path
from .engine import CheckSettings, discover_usage_roots, run_engine
from .program_rules import ALL_PROGRAM_RULES
from .rules import ALL_RULES

__all__ = ["run_simlint_bench", "compare_to_baseline"]


def _best_of(fn, rounds: int) -> float:
    """Min-of-N wall time: the stable estimator for short loops."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_simlint_bench(
    paths: Sequence[str] = ("src",),
    rounds: int = 3,
    jobs: int = 0,
) -> dict:
    """Time cold and warm full-rule runs; returns the BENCH payload."""
    with tempfile.TemporaryDirectory(prefix="simlint-bench-") as tmp:
        cache_path = Path(tmp) / "cache.json"
        settings = CheckSettings(
            paths=list(paths),
            rules=ALL_RULES,
            program_rules=ALL_PROGRAM_RULES,
            baseline_path=default_baseline_path(),
            cache_path=cache_path,
            jobs=jobs,
            usage_roots=discover_usage_roots(list(paths)),
        )

        last: dict[str, object] = {}

        def cold() -> None:
            cache_path.unlink(missing_ok=True)
            last["cold"] = run_engine(settings)

        def warm() -> None:
            last["warm"] = run_engine(settings)

        cold_s = _best_of(cold, rounds)  # leaves a fresh cache behind
        warm_s = _best_of(warm, rounds)
        cold_outcome = last["cold"]
        warm_outcome = last["warm"]

    return {
        "schema": 1,
        "kind": "simlint-microbench",
        "git_rev": _git_rev(),
        "paths": list(paths),
        "rounds": rounds,
        "jobs": jobs,
        "files_checked": warm_outcome.files_checked,
        "files_analyzed_cold": cold_outcome.files_analyzed,
        "files_analyzed_warm": warm_outcome.files_analyzed,
        "errors": len(warm_outcome.errors),
        "warnings": len(warm_outcome.warnings),
        "baselined": warm_outcome.baselined,
        "aggregate": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        },
    }


def compare_to_baseline(
    current: dict,
    baseline: dict,
    tolerance: float = 0.10,
    time_tolerance: float | None = None,
) -> tuple[bool, str]:
    """CI gate, shaped like the replay bench's.

    Always enforced: the warm run analyzed zero files and the tree has
    zero unbaselined errors (functional regressions dressed up as perf).
    The cold/warm speedup must stay within ``tolerance`` of the
    baseline's; ``time_tolerance`` additionally gates raw wall times for
    same-machine comparisons (off by default — raw seconds are
    machine-dependent, ratios are not).
    """
    problems: list[str] = []
    if current["files_analyzed_warm"] != 0:
        problems.append(
            f"warm cache re-analyzed {current['files_analyzed_warm']} files "
            "(expected 0: the cache contract is broken)"
        )
    if current["errors"]:
        problems.append(f"{current['errors']} unbaselined errors in the tree")
    current_speedup = current["aggregate"]["speedup"]
    baseline_speedup = baseline["aggregate"]["speedup"]
    floor = baseline_speedup * (1.0 - tolerance)
    if current_speedup < floor:
        problems.append(
            f"cold/warm speedup {current_speedup:.1f}x fell below "
            f"{floor:.1f}x (baseline {baseline_speedup:.1f}x - {tolerance:.0%})"
        )
    if time_tolerance is not None:
        for key in ("cold_s", "warm_s"):
            ceiling = baseline["aggregate"][key] * (1.0 + time_tolerance)
            if current["aggregate"][key] > ceiling:
                problems.append(
                    f"{key} {current['aggregate'][key]:.3f}s exceeds "
                    f"{ceiling:.3f}s (baseline + {time_tolerance:.0%})"
                )
    if problems:
        return False, "; ".join(problems)
    return True, (
        f"cold {current['aggregate']['cold_s']:.2f}s, warm "
        f"{current['aggregate']['warm_s']:.2f}s ({current_speedup:.1f}x; "
        f"baseline {baseline_speedup:.1f}x, tolerance {tolerance:.0%})"
    )


def _format_summary(payload: dict) -> str:
    agg = payload["aggregate"]
    return (
        f"simlint bench: {payload['files_checked']} files, "
        f"cold {agg['cold_s']:.2f}s ({payload['files_analyzed_cold']} analyzed), "
        f"warm {agg['warm_s']:.2f}s ({payload['files_analyzed_warm']} analyzed), "
        f"speedup {agg['speedup']:.1f}x"
    )


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-simlint-bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", help="write the BENCH_simlint.json payload here")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed BENCH_simlint.json; exit 1 on a "
        "broken cache contract or a speedup regression",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--paths", nargs="*", default=["src"],
        help="trees to analyze (default: src)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional speedup regression for --check (default 0.10)",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=None, metavar="FRACTION",
        help="also gate raw cold/warm wall times against the baseline's "
        "(same-machine comparisons only; off by default)",
    )
    args = parser.parse_args(argv)

    payload = run_simlint_bench(paths=args.paths, rounds=args.rounds)
    emit(_format_summary(payload))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        emit(f"wrote {out}")
    if args.check:
        baseline = json.loads(Path(args.check).read_text(encoding="utf-8"))
        ok, message = compare_to_baseline(
            payload,
            baseline,
            tolerance=args.tolerance,
            time_tolerance=args.time_tolerance,
        )
        emit(("PASS: " if ok else "FAIL: ") + message)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
