"""Baseline file: accepted findings, for gradual adoption of new rules.

A baseline entry identifies one finding by its stable fingerprint —
``(rule id, path, key)`` where ``key`` is the violation's semantic
identity (an import edge, a def name, an export name; see
:meth:`~repro.checks.framework.Violation.fingerprint`) — plus a
free-text tracking comment explaining *why* the finding is accepted.
Line format, one finding per line::

    ARCH001|src/repro/sim/controller.py|repro.sim.controller->repro.engine.backend|legacy sim-world adapter (PR 3)

Fields are ``|``-separated because FLOW002 keys legitimately contain
``#``.  Lines starting with ``#`` are file comments.  Paths are
normalized to begin at ``src/`` so the baseline is location-independent.

``repro-fbf check --update-baseline`` rewrites the file from the current
findings: entries that still match keep their comment, new findings get
a placeholder comment to fill in, and stale entries disappear.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from .framework import Violation

__all__ = [
    "load_baseline",
    "render_baseline",
    "apply_baseline",
    "default_baseline_path",
]

Fingerprint = tuple[str, str, str]

_HEADER = """\
# simlint baseline — accepted findings, one per line:
#   RULE|path|key|tracking comment (why this finding is exempt)
# Regenerate with: repro-fbf check --update-baseline
"""


def default_baseline_path() -> Path:
    return Path(__file__).parent / "simlint_baseline.txt"


def load_baseline(path: str | Path) -> dict[Fingerprint, str]:
    """Fingerprint -> tracking comment; {} when the file doesn't exist."""
    p = Path(path)
    if not p.is_file():
        return {}
    entries: dict[Fingerprint, str] = {}
    for raw in p.read_text(encoding="utf-8").splitlines():
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        fields = text.split("|", 3)
        if len(fields) < 3:
            continue  # malformed line; ignore rather than crash CI
        rule_id, vpath, key = fields[0], fields[1], fields[2]
        comment = fields[3].strip() if len(fields) > 3 else ""
        entries[(rule_id, vpath, key)] = comment
    return entries


def render_baseline(
    violations: Iterable[Violation],
    previous: Mapping[Fingerprint, str] | None = None,
) -> str:
    """Baseline text accepting ``violations``, preserving old comments."""
    previous = previous or {}
    lines = [_HEADER.rstrip()]
    seen: set[Fingerprint] = set()
    for violation in sorted(
        violations, key=lambda v: (v.rule_id, v.path, v.key, v.line)
    ):
        fp = violation.fingerprint()
        if fp in seen:
            continue
        seen.add(fp)
        comment = previous.get(fp, "TODO: justify or fix")
        lines.append("|".join((*fp, comment)))
    return "\n".join(lines) + "\n"


def apply_baseline(
    violations: Iterable[Violation],
    baseline: Mapping[Fingerprint, str],
) -> tuple[list[Violation], list[Violation], list[Fingerprint]]:
    """Split into (surviving, baselined, unused-baseline-entries)."""
    surviving: list[Violation] = []
    baselined: list[Violation] = []
    matched: set[Fingerprint] = set()
    for violation in violations:
        fp = violation.fingerprint()
        if fp in baseline:
            baselined.append(violation)
            matched.add(fp)
        else:
            surviving.append(violation)
    unused = sorted(set(baseline) - matched)
    return surviving, baselined, unused
