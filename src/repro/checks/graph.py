"""Project-wide module/import graph with symbol resolution for simlint.

Per-file AST rules (:mod:`repro.checks.rules`) cannot witness global
properties — a layering inversion, an import cycle, a symbol nothing
reachable ever uses, a seed forged three calls away from its
``GridPoint``.  This module builds the whole-program model those rules
need, in two stages:

1. :func:`summarize_module` reduces one parsed module to a
   :class:`ModuleSummary` — imports (with resolved absolute targets),
   module-level definitions and the symbols each references, ``__all__``,
   RNG-construction sites with their seed-provenance verdict (via
   :mod:`repro.checks.flow`), obs metric call sites with their guard
   verdict, the intra-module call graph, and the file's suppression
   comments.  Summaries are plain data (JSON round-trippable), so the
   lint engine caches them per file and whole-program analysis on a warm
   cache re-parses nothing.
2. :class:`ProjectGraph` assembles summaries into the program model:
   module lookup, re-export chasing (``from .registry import x`` in a
   package ``__init__`` resolves ``pkg:x`` to ``pkg.registry:x``),
   import-cycle detection (iterative Tarjan SCC), and def-level
   reference resolution for reachability analysis.

Module naming is path-based: everything after the last ``src``
component, else the longest chain of ``__init__.py`` packages, else the
file stem — so fixture trees in tests resolve exactly like the real
tree.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from .flow import GuardAnalysis, TaintTracker

__all__ = [
    "ImportEdge",
    "DefInfo",
    "RngSite",
    "ObsSite",
    "CallSite",
    "FuncInfo",
    "ModuleSummary",
    "ProjectGraph",
    "module_name_for",
    "summarize_module",
    "summarize_source",
]


# -- module naming -------------------------------------------------------------

def module_name_for(path: str | Path) -> str:
    """Dotted module name for ``path`` (see module docstring for rules)."""
    p = Path(path)
    parts = list(p.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        idx = len(parts) - 1 - parts[::-1].index("src")
        tail = parts[idx + 1:]
        if tail:
            return ".".join(tail)
    # Walk up through __init__.py packages.
    pkg_parts = [parts[-1]] if parts else []
    directory = p.parent
    while (directory / "__init__.py").is_file():
        pkg_parts.insert(0, directory.name)
        directory = directory.parent
    return ".".join(pkg_parts) if pkg_parts else p.stem


# -- summary data model --------------------------------------------------------

@dataclass(frozen=True)
class ImportEdge:
    """One import statement's resolved target."""

    target: str  #: absolute dotted module ("" when unresolvable)
    names: tuple[str, ...]  #: from-imported names; () for plain ``import``
    line: int
    col: int
    type_checking: bool = False  #: inside ``if TYPE_CHECKING:``
    function_level: bool = False  #: inside a def (lazy import)


@dataclass(frozen=True)
class DefInfo:
    """One module-level definition and the symbols its body references."""

    name: str
    kind: str  #: "function" | "class" | "assign"
    line: int
    col: int
    decorated: bool = False
    refs: tuple[str, ...] = ()  #: resolved reference keys ("module:name")


@dataclass(frozen=True)
class RngSite:
    """One RNG construction with its seed-provenance verdict.

    ``verdict`` grammar: ``ok:<label>`` (seed-derived), ``const``
    (literal seed forged locally), ``missing`` (no seed argument — OS
    entropy), ``param:<name>`` (flows from a parameter not named as a
    seed), ``opaque:<expr>`` (provenance invisible to the dataflow).
    """

    line: int
    col: int
    call: str  #: resolved constructor, e.g. "numpy.random.default_rng"
    verdict: str
    func: str  #: enclosing function qualname ("" = module level)


@dataclass(frozen=True)
class ObsSite:
    """One obs metric accessor call site in this module."""

    line: int
    col: int
    accessor: str  #: counter | gauge | histogram | span
    guarded: bool  #: lexically inside an ENABLED guard
    func: str  #: enclosing function qualname ("" = module level)


@dataclass(frozen=True)
class CallSite:
    """An intra-project call edge used by the guard-reachability fixpoint."""

    callee: str  #: "qualname" (same module), "mod:name", or "self.method"
    line: int
    guarded: bool


@dataclass(frozen=True)
class FuncInfo:
    """One function/method: its qualname and outgoing calls."""

    qualname: str  #: "f" or "Class.f"
    line: int
    calls: tuple[CallSite, ...] = ()


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the whole-program rules need from one module."""

    module: str
    path: str
    imports: tuple[ImportEdge, ...] = ()
    defs: tuple[DefInfo, ...] = ()
    module_refs: tuple[str, ...] = ()  #: refs from module-level code
    all_names: tuple[str, ...] = ()  #: literal ``__all__`` entries
    rng_sites: tuple[RngSite, ...] = ()
    obs_sites: tuple[ObsSite, ...] = ()
    funcs: tuple[FuncInfo, ...] = ()
    has_main: bool = False  #: has an ``if __name__ == "__main__"`` block
    #: from-import aliases: local name -> "module:name" (for re-exports)
    aliases: tuple[tuple[str, str], ...] = ()

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    @staticmethod
    def from_dict(data: Mapping) -> "ModuleSummary":
        return ModuleSummary(
            module=data["module"],
            path=data["path"],
            imports=tuple(ImportEdge(**{**e, "names": tuple(e["names"])})
                          for e in data["imports"]),
            defs=tuple(DefInfo(**{**d, "refs": tuple(d["refs"])})
                       for d in data["defs"]),
            module_refs=tuple(data["module_refs"]),
            all_names=tuple(data["all_names"]),
            rng_sites=tuple(RngSite(**s) for s in data["rng_sites"]),
            obs_sites=tuple(ObsSite(**s) for s in data["obs_sites"]),
            funcs=tuple(
                FuncInfo(
                    qualname=f["qualname"],
                    line=f["line"],
                    calls=tuple(CallSite(**c) for c in f["calls"]),
                )
                for f in data["funcs"]
            ),
            has_main=data["has_main"],
            aliases=tuple((a, b) for a, b in data["aliases"]),
        )


# -- extraction ----------------------------------------------------------------

_RNG_CONSTRUCTORS = {
    "random.Random": "random.Random",
    "numpy.random.default_rng": "numpy.random.default_rng",
    "numpy.random.Generator": "numpy.random.Generator",
    "numpy.random.RandomState": "numpy.random.RandomState",
    "repro.utils.make_rng": "repro.utils.make_rng",
}

#: Seeded numpy bit-generator constructors: ``Generator(PCG64(seed))``
#: carries its seed one call deeper, so the taint pass unwraps these
#: before classifying the seed expression.
_BIT_GENERATORS = frozenset({
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
})

_OBS_ACCESSORS = ("counter", "gauge", "histogram", "span")
_OBS_MODULES = ("repro.obs.runtime", "repro.obs")


def _seedlike(name: str) -> bool:
    return (
        name in ("seed", "rng")
        or name.endswith("_seed")
        or name.endswith("_rng")
        or name.startswith("seed_")
    )


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: str | None) -> str:
    """Absolute module for a ``from ...x import`` statement."""
    parts = module.split(".") if module else []
    base = parts if is_package else parts[:-1]
    up = level - 1
    if up > 0:
        base = base[: max(len(base) - up, 0)]
    if target:
        base = base + target.split(".")
    return ".".join(base)


class _Summarizer(ast.NodeVisitor):
    """One pass over a module AST building its :class:`ModuleSummary`."""

    def __init__(self, module: str, path: str, is_package: bool) -> None:
        self.module = module
        self.path = path
        self.is_package = is_package
        self.imports: list[ImportEdge] = []
        self.defs: list[DefInfo] = []
        self.module_refs: list[str] = []
        self.all_names: list[str] = []
        self.rng_sites: list[RngSite] = []
        self.obs_sites: list[ObsSite] = []
        self.funcs: list[FuncInfo] = []
        self.has_main = False
        #: local name -> absolute module (plain/submodule imports)
        self.module_aliases: dict[str, str] = {}
        #: local name -> ("module", "name") for from-imports of names
        self.name_aliases: dict[str, tuple[str, str]] = {}
        self._def_depth = 0
        self._type_checking_depth = 0

    # -- imports ---------------------------------------------------------------

    def _add_import(self, target: str, names: tuple[str, ...],
                    node: ast.stmt) -> None:
        self.imports.append(
            ImportEdge(
                target=target,
                names=names,
                line=node.lineno,
                col=node.col_offset,
                type_checking=self._type_checking_depth > 0,
                function_level=self._def_depth > 0,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add_import(alias.name, (), node)
            local = alias.asname or alias.name.split(".")[0]
            # `import a.b` binds `a`; `import a.b as c` binds c -> a.b.
            self.module_aliases[local] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level > 0:
            base = _resolve_relative(
                self.module, self.is_package, node.level, node.module
            )
        else:
            base = node.module or ""
        names = tuple(a.name for a in node.names)
        self._add_import(base, names, node)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.name_aliases[local] = (base, alias.name)

    # -- scopes / defs ---------------------------------------------------------

    def _handle_def(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                    | ast.ClassDef, kind: str) -> None:
        if self._def_depth == 0 and self._type_checking_depth == 0:
            self.defs.append(
                DefInfo(
                    name=node.name,
                    kind=kind,
                    line=node.lineno,
                    col=node.col_offset,
                    decorated=bool(node.decorator_list),
                    refs=(),  # filled in by summarize_module's second pass
                )
            )
        self._def_depth += 1
        self.generic_visit(node)
        self._def_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_def(node, "function")

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_def(node, "function")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._handle_def(node, "class")

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._def_depth == 0:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if target.id == "__all__":
                        self._collect_all(node.value)
                    elif not (target.id.startswith("__")
                              and target.id.endswith("__")):
                        self.defs.append(
                            DefInfo(name=target.id, kind="assign",
                                    line=node.lineno, col=node.col_offset)
                        )
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._def_depth == 0 and isinstance(node.target, ast.Name):
            name = node.target.id
            if name != "__all__" and not (name.startswith("__")
                                          and name.endswith("__")):
                self.defs.append(
                    DefInfo(name=name, kind="assign",
                            line=node.lineno, col=node.col_offset)
                )
        self.generic_visit(node)

    def _collect_all(self, value: ast.expr) -> None:
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    self.all_names.append(element.value)

    def visit_If(self, node: ast.If) -> None:
        if self._is_type_checking(node.test):
            self._type_checking_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._type_checking_depth -= 1
            for stmt in node.orelse:
                self.visit(stmt)
            return
        if self._is_main_check(node.test):
            self.has_main = True
        self.generic_visit(node)

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )

    @staticmethod
    def _is_main_check(test: ast.expr) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Name) and sub.id == "__name__":
                return True
        return False


def _reference_keys(
    node: ast.AST,
    module_aliases: Mapping[str, str],
    name_aliases: Mapping[str, tuple[str, str]],
    skip_names: frozenset[str] = frozenset(),
) -> Iterator[str]:
    """Resolved reference keys (``"module:name"`` / ``":name"``) in a subtree.

    ``":name"`` means a same-module reference, resolved when the graph
    is assembled.  Attribute chains are resolved one level deep against
    plain-module imports (``mod.attr`` -> ``mod:attr``).
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            root = sub
            chain: list[str] = []
            while isinstance(root, ast.Attribute):
                chain.append(root.attr)
                root = root.value
            if isinstance(root, ast.Name):
                base: str | None = None
                if root.id in module_aliases:
                    base = module_aliases[root.id]
                elif root.id in name_aliases:
                    # The from-imported name may itself be a module
                    # (`from ..obs import runtime as _obs`), so keep the
                    # attribute chain alive through it too.
                    target_mod, target_name = name_aliases[root.id]
                    yield f"{target_mod}:{target_name}"
                    base = f"{target_mod}.{target_name}"
                if base is not None:
                    # `a.b.c.f` — which prefix is the module is unknown
                    # statically; emit every split and let resolution
                    # discard the ones that name nothing.
                    chain.reverse()
                    for i in range(len(chain)):
                        mod = ".".join([base, *chain[:i]])
                        yield f"{mod}:{chain[i]}"
        elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if sub.id in skip_names:
                continue
            if sub.id in name_aliases:
                target_mod, target_name = name_aliases[sub.id]
                yield f"{target_mod}:{target_name}"
            elif sub.id in module_aliases:
                yield f"{module_aliases[sub.id]}:"
            else:
                yield f":{sub.id}"


_BUILTIN_NAMES = frozenset(dir(builtins)) | frozenset(
    ("self", "cls", "True", "False", "None")
)


def _qualname_parts(stack: Sequence[ast.AST]) -> str:
    names = [getattr(n, "name", "") for n in stack]
    return ".".join(n for n in names if n)


def _function_param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    params = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return params


def summarize_source(source: str, path: str,
                     module: str | None = None) -> ModuleSummary:
    tree = ast.parse(source, filename=str(path))
    return summarize_module(tree, path, module)


def summarize_module(tree: ast.Module, path: str,
                     module: str | None = None) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed module."""
    posix = Path(path).as_posix()
    is_package = posix.endswith("__init__.py")
    name = module if module is not None else module_name_for(path)
    summ = _Summarizer(name, posix, is_package)
    summ.visit(tree)

    module_aliases = summ.module_aliases
    name_aliases = summ.name_aliases

    def is_obs_module_name(local: str) -> bool:
        target = module_aliases.get(local)
        if target in _OBS_MODULES:
            return True
        aliased = name_aliases.get(local)
        return aliased is not None and (
            ".".join(filter(None, aliased)) in _OBS_MODULES
            or (aliased[0] in ("repro.obs",) and aliased[1] == "runtime")
        )

    def is_guard_expr(expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr == "ENABLED"
            and isinstance(expr.value, ast.Name)
            and is_obs_module_name(expr.value.id)
        )

    def resolve_call(func: ast.expr) -> str | None:
        """Dotted origin of a called Name/Attribute, or None."""
        chain: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.reverse()
        if node.id in module_aliases:
            return ".".join([module_aliases[node.id], *chain])
        if node.id in name_aliases:
            mod, nm = name_aliases[node.id]
            return ".".join([mod, nm, *chain]) if mod else ".".join([nm, *chain])
        return ".".join([node.id, *chain])

    guard = GuardAnalysis(tree, is_guard_expr)

    # -- per-function walk: refs for defs, rng/obs sites, call graph ----------
    defs_by_name = {d.name: d for d in summ.defs}
    updated_defs: dict[str, DefInfo] = dict(defs_by_name)
    module_refs: list[str] = []
    rng_sites: list[RngSite] = []
    obs_sites: list[ObsSite] = []
    funcs: list[FuncInfo] = []

    def classify_rng(call: ast.Call, fn_stack: list[ast.AST]) -> str:
        enclosing = None
        for frame in reversed(fn_stack):
            if isinstance(frame, (ast.FunctionDef, ast.AsyncFunctionDef)):
                enclosing = frame
                break
        params = _function_param_names(enclosing) if enclosing else []
        seed_params = {p for p in params if _seedlike(p)}

        def is_source(expr: ast.expr) -> str | None:
            if isinstance(expr, ast.Name) and expr.id in seed_params:
                return f"param {expr.id}"
            if isinstance(expr, ast.Attribute) and _seedlike(expr.attr):
                return f"attr .{expr.attr}"
            return None

        tracker = TaintTracker(is_source)
        if enclosing is not None:
            tracker.analyze(enclosing.body)
        arg: ast.expr | None = None
        if call.args:
            arg = call.args[0]
        for kw in call.keywords:
            if kw.arg == "seed":
                arg = kw.value
        # Generator(PCG64(seed)): the provenance sits one constructor
        # deeper — unwrap known bit-generators before classifying.
        while isinstance(arg, ast.Call):
            if resolve_call(arg.func) not in _BIT_GENERATORS:
                break
            inner = arg.args[0] if arg.args else None
            for kw in arg.keywords:
                if kw.arg == "seed":
                    inner = kw.value
            arg = inner
        if arg is None or (isinstance(arg, ast.Constant) and arg.value is None):
            return "missing"
        label = tracker.label_of(arg)
        if label is not None:
            return f"ok:{label}"
        if isinstance(arg, ast.Constant):
            return "const"
        if isinstance(arg, ast.Name) and arg.id in params:
            return f"param:{arg.id}"
        try:
            text = ast.unparse(arg)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            text = "<expr>"
        return f"opaque:{text[:40]}"

    class _Walker(ast.NodeVisitor):
        def __init__(self) -> None:
            self.def_stack: list[ast.AST] = []
            self.current_calls: dict[int, list[CallSite]] = {}

        def _enclosing_func(self) -> str:
            return _qualname_parts(self.def_stack)

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self._walk_def(node)

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            self._walk_def(node)

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.def_stack.append(node)
            self.generic_visit(node)
            self.def_stack.pop()

        def _walk_def(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
            self.def_stack.append(node)
            self.current_calls[id(node)] = []
            self.generic_visit(node)
            qual = self._enclosing_func()
            funcs.append(
                FuncInfo(
                    qualname=qual,
                    line=node.lineno,
                    calls=tuple(self.current_calls.pop(id(node))),
                )
            )
            self.def_stack.pop()

        def visit_Call(self, node: ast.Call) -> None:
            dotted = resolve_call(node.func)
            # RNG-construction sites.
            if dotted is not None:
                normalized = _RNG_CONSTRUCTORS.get(dotted)
                if normalized is None and dotted.split(".")[-1] == "make_rng":
                    normalized = "repro.utils.make_rng"
                if normalized is not None:
                    rng_sites.append(
                        RngSite(
                            line=node.lineno,
                            col=node.col_offset,
                            call=normalized,
                            verdict=classify_rng(node, self.def_stack),
                            func=self._enclosing_func(),
                        )
                    )
            # Obs accessor sites.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _OBS_ACCESSORS
                and isinstance(node.func.value, ast.Name)
                and is_obs_module_name(node.func.value.id)
            ):
                obs_sites.append(
                    ObsSite(
                        line=node.lineno,
                        col=node.col_offset,
                        accessor=node.func.attr,
                        guarded=guard.is_guarded(node),
                        func=self._enclosing_func(),
                    )
                )
            # Intra-project call edges (for the FLOW002 fixpoint).
            callee: str | None = None
            if isinstance(node.func, ast.Name):
                if node.func.id in name_aliases:
                    mod, nm = name_aliases[node.func.id]
                    callee = f"{mod}:{nm}"
                elif node.func.id not in _BUILTIN_NAMES:
                    callee = node.func.id
            elif (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("self", "cls")
            ):
                cls_name = ""
                for frame in self.def_stack:
                    if isinstance(frame, ast.ClassDef):
                        cls_name = frame.name
                callee = f"{cls_name}.{node.func.attr}" if cls_name else None
            if callee is not None:
                for frame in reversed(self.def_stack):
                    if isinstance(frame, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.current_calls[id(frame)].append(
                            CallSite(
                                callee=callee,
                                line=node.lineno,
                                guarded=guard.is_guarded(node),
                            )
                        )
                        break
            self.generic_visit(node)

    _Walker().visit(tree)

    # -- def-level references (module level vs per top-level def) -------------
    top_level_defs = {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }
    own_names = frozenset(defs_by_name)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            continue
        for key in _reference_keys(stmt, module_aliases, name_aliases,
                                   _BUILTIN_NAMES - own_names):
            module_refs.append(key)
    for name_, node in top_level_defs.items():
        if name_ not in updated_defs:
            continue
        refs = tuple(
            dict.fromkeys(
                _reference_keys(node, module_aliases, name_aliases,
                                _BUILTIN_NAMES - own_names)
            )
        )
        old = updated_defs[name_]
        updated_defs[name_] = DefInfo(
            name=old.name, kind=old.kind, line=old.line, col=old.col,
            decorated=old.decorated, refs=refs,
        )

    return ModuleSummary(
        module=name,
        path=posix,
        imports=tuple(summ.imports),
        defs=tuple(updated_defs[d.name] for d in summ.defs),
        module_refs=tuple(dict.fromkeys(module_refs)),
        all_names=tuple(summ.all_names),
        rng_sites=tuple(rng_sites),
        obs_sites=tuple(obs_sites),
        funcs=tuple(funcs),
        has_main=summ.has_main,
        aliases=tuple(sorted((k, f"{m}:{n}") for k, (m, n)
                             in name_aliases.items())),
    )


# -- the assembled program model -----------------------------------------------

class ProjectGraph:
    """All module summaries plus resolution and cycle queries."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        for s in summaries:
            # Same dotted name from two files (stem-named scripts outside
            # any package): keep both under suffixed keys so neither
            # module's references are lost to the dead-code analysis.
            name = s.module
            while name in self.modules and self.modules[name].path != s.path:
                name += "+"
            if name != s.module:
                s = replace(s, module=name)
            self.modules[name] = s
        self._defs: dict[tuple[str, str], DefInfo] = {
            (s.module, d.name): d for s in summaries for d in s.defs
        }
        self._aliases: dict[str, dict[str, tuple[str, str]]] = {
            s.module: {
                local: tuple(target.split(":", 1))  # type: ignore[misc]
                for local, target in s.aliases
            }
            for s in summaries
        }

    def __contains__(self, module: str) -> bool:
        return module in self.modules

    def def_at(self, module: str, name: str) -> DefInfo | None:
        return self._defs.get((module, name))

    def resolve_symbol(
        self, module: str, name: str, _depth: int = 0
    ) -> tuple[str, str] | None:
        """Chase re-exports to the module that actually defines ``name``.

        Returns ``(module, name)`` of the defining module, or None when
        the chain leaves the analyzed project.
        """
        if _depth > 16 or module not in self.modules:
            return None
        if (module, name) in self._defs:
            return (module, name)
        alias = self._aliases.get(module, {}).get(name)
        if alias is not None:
            target_mod, target_name = alias
            # `from . import registry` style: the name IS a submodule.
            if not target_name or target_name == name and (
                f"{target_mod}.{name}" in self.modules
            ):
                sub = f"{target_mod}.{target_name or name}"
                if sub in self.modules:
                    return (sub, "")
            return self.resolve_symbol(target_mod, target_name, _depth + 1)
        # The name may itself be a submodule of a package.
        if f"{module}.{name}" in self.modules:
            return (f"{module}.{name}", "")
        return None

    # -- import graph ----------------------------------------------------------

    def runtime_import_edges(self, module: str) -> Iterator[tuple[str, ImportEdge]]:
        """(target module, edge) for every non-TYPE_CHECKING import.

        ``from pkg import name`` targets ``pkg.name`` when that is an
        analyzed module (a submodule import), else ``pkg``.
        """
        summary = self.modules.get(module)
        if summary is None:
            return
        for edge in summary.imports:
            if edge.type_checking:
                continue
            if not edge.names:
                if edge.target:
                    yield edge.target, edge
                continue
            for imported in edge.names:
                sub = f"{edge.target}.{imported}"
                if sub in self.modules:
                    yield sub, edge
                elif edge.target:
                    yield edge.target, edge

    def import_cycles(self) -> list[tuple[str, ...]]:
        """Import-time cycles: SCCs of size > 1 over module-level imports.

        Function-level (lazy) imports are excluded — they resolve at
        call time and cannot deadlock module initialisation, and they
        are the sanctioned way to break a would-be cycle.  Iterative
        Tarjan with sorted edges, so the result is deterministic.
        """
        graph: dict[str, list[str]] = {}
        for module in self.modules:
            targets = sorted(
                {
                    target
                    for target, edge in self.runtime_import_edges(module)
                    if target in self.modules
                    and target != module
                    and not edge.function_level
                }
            )
            graph[module] = targets
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: dict[str, None] = {}
        stack: list[str] = []
        counter = [0]
        sccs: list[tuple[str, ...]] = []

        for root in sorted(graph):
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, child_i = work[-1]
                if child_i == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack[node] = None
                recurse = False
                children = graph[node]
                while child_i < len(children):
                    child = children[child_i]
                    child_i += 1
                    if child not in index:
                        work[-1] = (node, child_i)
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if recurse:
                    continue
                work[-1] = (node, child_i)
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        del on_stack[member]
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(tuple(sorted(component)))
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return sorted(sccs)
