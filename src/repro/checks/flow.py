"""Intraprocedural dataflow for simlint's whole-program rules.

Two small, deliberately simple analyses over one function body:

* :class:`TaintTracker` — forward may-taint propagation: a pluggable
  ``is_source`` predicate marks expressions as taint sources (for
  FLOW001: seed-like parameters and ``.seed``-like attribute loads), and
  assignments/loops/withs propagate the label to local names.  Any
  expression *containing* a tainted subexpression is tainted, so
  ``default_rng(seed + stripe)`` and ``make_rng(hash((seed, i)))`` stay
  recognised as seed-derived.
* :class:`GuardAnalysis` — lexical guard containment: is a node inside
  the true branch of an ``if`` whose test references a guard attribute
  (for FLOW002: ``_obs.ENABLED``, or a local alias assigned from it)?

Both are *may* analyses run to a two-pass quasi-fixpoint (enough for
straight-line code, loops, and the alias idioms this codebase uses) and
are intentionally conservative in opposite directions: taint
over-approximates (fewer false FLOW001 positives), guards
under-approximate (an unproven guard is reported, never assumed).
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

__all__ = ["TaintTracker", "GuardAnalysis", "iter_assign_targets"]


def iter_assign_targets(node: ast.AST) -> Iterator[ast.expr]:
    """Flatten assignment targets (tuples/lists/starred) into leaf exprs."""
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from iter_assign_targets(element)
    elif isinstance(node, ast.Starred):
        yield from iter_assign_targets(node.value)
    else:
        yield node


class TaintTracker:
    """Forward may-taint over one function (or module) body.

    ``is_source(expr)`` returns a short label (e.g. ``"param seed"``)
    when ``expr`` is itself a taint source, else ``None``.  After
    :meth:`analyze`, :meth:`label_of` classifies any expression from the
    same body.
    """

    def __init__(self, is_source: Callable[[ast.expr], str | None]) -> None:
        self._is_source = is_source
        self._tainted: dict[str, str] = {}

    # -- propagation ----------------------------------------------------------

    def analyze(self, body: list[ast.stmt]) -> dict[str, str]:
        """Two forward passes so loop-carried flows converge."""
        for _ in range(2):
            for stmt in body:
                self._visit_stmt(stmt)
        return dict(self._tainted)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            # x += tainted taints x; x stays tainted if it already was.
            label = self.label_of(stmt.value) or self.label_of(stmt.target)
            if label is not None:
                self._mark(stmt.target, label)
        elif isinstance(stmt, ast.For):
            label = self.label_of(stmt.iter)
            if label is not None:
                self._mark(stmt.target, label)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    label = self.label_of(item.context_expr)
                    if label is not None:
                        self._mark(item.optional_vars, label)
            self._visit_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_block(stmt.body)
            for handler in stmt.handlers:
                self._visit_block(handler.body)
            self._visit_block(stmt.orelse)
            self._visit_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.NamedExpr):
            label = self.label_of(stmt.value.value)
            if label is not None:
                self._mark(stmt.value.target, label)
        # Nested defs get their own tracker; do not descend.

    def _visit_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        label = self.label_of(value)
        if label is None:
            return
        for target in targets:
            self._mark(target, label)

    def _mark(self, target: ast.expr, label: str) -> None:
        for leaf in iter_assign_targets(target):
            if isinstance(leaf, ast.Name):
                self._tainted.setdefault(leaf.id, label)

    # -- queries --------------------------------------------------------------

    def label_of(self, expr: ast.expr) -> str | None:
        """Taint label of ``expr``, or None.

        Walks the whole expression: a tainted subterm taints the term
        (may-analysis), including walrus targets inside the expression.
        """
        for node in ast.walk(expr):
            if isinstance(node, ast.expr):
                label = self._is_source(node)
                if label is not None:
                    return label
            if isinstance(node, ast.Name) and node.id in self._tainted:
                return self._tainted[node.id]
            if isinstance(node, ast.NamedExpr):
                label = self.label_of(node.value)
                if label is not None:
                    self._tainted.setdefault(node.target.id, label)
        return None


class GuardAnalysis:
    """Is a node lexically inside an ``if`` guarded by a flag attribute?

    ``is_guard_expr(expr)`` recognises the canonical guard (for obs:
    an ``ENABLED`` attribute on the runtime module).  Local aliases
    assigned *directly* from a guard expression (``obs_on =
    _obs.ENABLED``) also count, matching the hot-loop idiom where the
    module attribute is read once into a local.
    """

    def __init__(
        self, root: ast.AST, is_guard_expr: Callable[[ast.expr], bool]
    ) -> None:
        self._is_guard_expr = is_guard_expr
        self._aliases: set[str] = set()
        self._collect_aliases(root)
        # Guarded spans: every node inside the body of a guarded `if`.
        self._guarded_ids: set[int] = set()
        self._collect_guarded(root)

    def _collect_aliases(self, root: ast.AST) -> None:
        # Two passes: an alias of an alias (rare) still resolves.
        for _ in range(2):
            for node in ast.walk(root):
                if isinstance(node, ast.Assign) and self._test_references_guard(
                    node.value
                ):
                    for target in node.targets:
                        for leaf in iter_assign_targets(target):
                            if isinstance(leaf, ast.Name):
                                self._aliases.add(leaf.id)

    def _test_references_guard(self, test: ast.expr) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.expr) and self._is_guard_expr(node):
                return True
            if isinstance(node, ast.Name) and node.id in self._aliases:
                return True
        return False

    def _collect_guarded(self, root: ast.AST) -> None:
        for node in ast.walk(root):
            if isinstance(node, ast.If) and self._test_references_guard(node.test):
                for child in node.body:
                    for sub in ast.walk(child):
                        self._guarded_ids.add(id(sub))

    def is_guarded(self, node: ast.AST) -> bool:
        return id(node) in self._guarded_ids
