"""Whole-program rules over the project graph.

Per-file rules (:mod:`repro.checks.rules`) see one AST at a time; the
rules here see the assembled :class:`~repro.checks.graph.ProjectGraph`
and enforce properties no single file can witness:

========  ========  ======================================================
rule      severity  property
========  ========  ======================================================
ARCH001   error     the declared layer DAG holds: no upward imports, no
                    import-time cycles
ARCH002   warning   every module-level def is reachable from an entry
                    point (``repro.api``, ``repro.cli``, ``__main__``
                    blocks) or a usage root (tests, benchmarks)
FLOW001   error     every RNG constructed in ``sim``/``engine``/``bench``
                    is data-derived from an explicit seed (extends DET001
                    across call boundaries via the taint tracker)
FLOW002   error     every obs metric call in a hot-path module runs only
                    behind the ``ENABLED`` guard, directly or through a
                    guarded call chain
API001    error     the exported surface of ``repro.api`` matches the
                    committed manifest (facade drift fails CI)
========  ========  ======================================================

Each violation carries a stable ``key`` (an import edge, a def name, an
export name) so the baseline file identifies findings across line-number
churn.  Layer maps, entry points, and scopes are constructor parameters
with project defaults, so the same rules run against tiny fixture trees
in tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from .framework import Violation
from .graph import ObsSite, ProjectGraph

__all__ = [
    "ProgramRule",
    "LayerRule",
    "DeadDefRule",
    "SeedProvenanceRule",
    "ObsGuardRule",
    "ApiManifestRule",
    "ALL_PROGRAM_RULES",
    "DEFAULT_LAYERS",
    "V2_NAMESPACES",
    "default_manifest_dir",
    "default_manifest_path",
    "render_manifest",
]

#: First-level package name -> layer index (lower imports from lower only).
#: A dotted two-level key (``"sim.cluster"``) overrides its package's
#: layer for that submodule — used where one module of a package
#: legitimately sits a layer above its siblings.
#: ``utils``/``obs``/``checks.sanitizer`` are additionally cross-cutting —
#: importable from any layer — because observability and shared helpers
#: are deliberately dependency-free leaves (see DESIGN.md §13).
DEFAULT_LAYERS: Mapping[str, int] = {
    "utils": 0,
    "core": 0,
    "codes": 1,
    "cache": 1,
    "sim": 1,
    "sim.topology": 1,
    # the cluster scenario drives the engine's timed replay, so it lives
    # with the engine in the DAG even though it ships under sim/
    "sim.cluster": 2,
    "lrc": 1,
    "engine": 2,
    "array": 2,
    "workloads": 2,
    "analysis": 3,
    "obs": 3,
    "bench": 4,
    # the advisor service composes the bench engine and the incremental
    # interner, and is itself re-exported by the api facade
    "serve": 5,
    "api": 5,
    "cli": 5,
    "checks": 5,
}

#: Modules importable from any layer (module name or dotted prefix).
DEFAULT_CROSS_CUTTING: tuple[str, ...] = (
    "repro.utils",
    "repro.obs",
    "repro.checks.sanitizer",
)

#: The versioned facade: manifest namespace -> the module API001 gates.
#: The v1 ``repro.api`` shim resolves names dynamically (a module
#: ``__getattr__``), which no AST pass can see, so the manifests gate
#: the v2 namespaces — the modules that actually own the surface.
V2_NAMESPACES: Mapping[str, str] = {
    "replay": "repro.api.v2.replay",
    "bench": "repro.api.v2.bench",
    "cluster": "repro.api.v2.cluster",
    "serve": "repro.api.v2.serve",
}


class ProgramRule(ABC):
    """One named check over the whole project graph."""

    rule_id: str = ""
    summary: str = ""
    default_severity: str = "error"

    @abstractmethod
    def check(self, graph: ProjectGraph) -> Iterator[Violation]:
        """Yield violations found in the assembled project graph."""

    def violation(
        self, path: str, line: int, message: str, key: str, col: int = 0
    ) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            path=path,
            line=line,
            col=col,
            message=message,
            severity=self.default_severity,
            key=key,
        )


def _layer_of(module: str, layers: Mapping[str, int]) -> int | None:
    """Layer of a dotted module; None = unconstrained, root package = top.

    A two-level key (``"sim.cluster"``) takes precedence over the
    package-level key (``"sim"``) for that submodule and anything under
    it.
    """
    parts = module.split(".")
    if len(parts) == 1:
        return max(layers.values(), default=0) + 1
    if len(parts) >= 3:
        sub = layers.get(parts[1] + "." + parts[2])
        if sub is not None:
            return sub
    return layers.get(parts[1])


def _matches_prefix(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


class LayerRule(ProgramRule):
    """ARCH001: the declared layer DAG holds.

    An import from layer *i* to layer *j > i* (an "upward" import —
    lower infrastructure reaching into higher policy) is an error, as is
    any import-time cycle.  ``TYPE_CHECKING`` imports are exempt (they
    are annotations, not dependencies); function-level imports still
    count for layering (the dependency exists, merely deferred) but not
    for cycles (deferral is exactly how a cycle is legitimately broken).
    """

    rule_id = "ARCH001"
    summary = "layer DAG: no upward imports, no import-time cycles"

    def __init__(
        self,
        layers: Mapping[str, int] | None = None,
        cross_cutting: Sequence[str] = DEFAULT_CROSS_CUTTING,
        root: str = "repro",
    ) -> None:
        self.layers = dict(DEFAULT_LAYERS if layers is None else layers)
        self.cross_cutting = tuple(cross_cutting)
        self.root = root

    def _in_root(self, module: str) -> bool:
        return module == self.root or module.startswith(self.root + ".")

    def check(self, graph: ProjectGraph) -> Iterator[Violation]:
        for module in sorted(graph.modules):
            if not self._in_root(module):
                continue  # tests/benchmarks are consumers, not layers
            summary = graph.modules[module]
            src_layer = _layer_of(module, self.layers)
            if src_layer is None:
                continue
            seen_edges: set[tuple[str, int]] = set()
            for target, edge in graph.runtime_import_edges(module):
                if target not in graph.modules:
                    continue
                if _matches_prefix(target, self.cross_cutting):
                    continue
                dst_layer = _layer_of(target, self.layers)
                if dst_layer is None or dst_layer <= src_layer:
                    continue
                dedup = (target, edge.line)
                if dedup in seen_edges:
                    continue
                seen_edges.add(dedup)
                yield self.violation(
                    summary.path,
                    edge.line,
                    f"upward import: {module} (layer {src_layer}) imports "
                    f"{target} (layer {dst_layer}); dependencies must point "
                    "down the layer DAG",
                    key=f"{module}->{target}",
                    col=edge.col,
                )
        for cycle in graph.import_cycles():
            anchor = graph.modules[cycle[0]]
            line = 1
            for target, edge in graph.runtime_import_edges(cycle[0]):
                if target in cycle and not edge.function_level:
                    line = edge.line
                    break
            yield self.violation(
                anchor.path,
                line,
                "import cycle: " + " -> ".join((*cycle, cycle[0])),
                key="cycle:" + "+".join(cycle),
            )


class DeadDefRule(ProgramRule):
    """ARCH002: module-level defs unreachable from any entry point.

    Liveness is deliberately over-approximated (so the warning
    under-reports): every module-level reference anywhere counts as
    usage (module bodies execute on import), decorated defs are exempt
    (decorators typically register), dunders are exempt, and reachability
    chases re-export aliases.  Defs in usage roots (tests, benchmarks,
    anything outside ``src/``) are never reported — those modules only
    contribute references.
    """

    rule_id = "ARCH002"
    summary = "dead module-level def: unreachable from api/cli/test entry points"
    default_severity = "warning"

    def __init__(self, entry_modules: Sequence[str] | None = None) -> None:
        self.entry_modules = tuple(
            entry_modules
            if entry_modules is not None
            else (
                # the v1 shim resolves dynamically, so the v2 namespaces
                # (whose __all__ lists are AST-visible) anchor liveness
                "repro.api",
                *V2_NAMESPACES.values(),
                "repro.cli",
                "repro.checks.cli",
            )
        )

    @staticmethod
    def _is_reportable(path: str) -> bool:
        return "src/" in path

    def _resolve_ref(
        self, graph: ProjectGraph, module: str, key: str
    ) -> tuple[str, str] | None:
        mod, _, name = key.partition(":")
        if not name:
            return None  # bare module reference
        return graph.resolve_symbol(mod or module, name)

    def check(self, graph: ProjectGraph) -> Iterator[Violation]:
        live: set[tuple[str, str]] = set()
        worklist: list[tuple[str, str]] = []

        def mark(target: tuple[str, str] | None) -> None:
            if target is not None and target not in live:
                live.add(target)
                worklist.append(target)

        for module, summary in graph.modules.items():
            is_root_module = (
                module in self.entry_modules
                or summary.has_main
                or not self._is_reportable(summary.path)
            )
            if is_root_module:
                for d in summary.defs:
                    mark((module, d.name))
                for name in summary.all_names:
                    mark(graph.resolve_symbol(module, name))
            # Module-level code runs on import: its references are usage.
            for key in summary.module_refs:
                mark(self._resolve_ref(graph, module, key))

        while worklist:
            module, name = worklist.pop()
            info = graph.def_at(module, name)
            if info is None:
                continue
            for key in info.refs:
                mark(self._resolve_ref(graph, module, key))

        for module in sorted(graph.modules):
            summary = graph.modules[module]
            if not self._is_reportable(summary.path):
                continue
            if module in self.entry_modules or summary.has_main:
                continue
            for d in summary.defs:
                if (module, d.name) in live or d.decorated:
                    continue
                if d.name.startswith("__") and d.name.endswith("__"):
                    continue
                yield self.violation(
                    summary.path,
                    d.line,
                    f"{d.kind} '{d.name}' is never reachable from an entry "
                    "point (api/cli/__main__/tests); delete it or export it",
                    key=f"{module}:{d.name}",
                    col=d.col,
                )


class SeedProvenanceRule(ProgramRule):
    """FLOW001: every RNG in sim/engine/bench is derived from a real seed.

    Uses the per-site verdicts computed by the summarizer's taint pass:

    * ``ok:<label>`` — seed-derived, fine;
    * ``missing`` — no seed argument: OS entropy, irreproducible;
    * ``const`` — literal forged at the call site instead of flowing
      from the experiment config;
    * ``param:<name>`` — flows from a parameter whose name does not mark
      it as a seed, so provenance is invisible at call boundaries;
    * ``opaque:<expr>`` — the dataflow cannot see any seed in the
      argument.
    """

    rule_id = "FLOW001"
    summary = "RNG seed must be data-derived from an explicit seed parameter"

    def __init__(self, scopes: Sequence[str] | None = None) -> None:
        self.scopes = tuple(
            scopes
            if scopes is not None
            else ("repro.sim", "repro.engine", "repro.bench")
        )

    _MESSAGES = {
        "missing": "RNG constructed without a seed (OS entropy): thread the "
        "experiment seed through an explicit parameter",
        "const": "RNG seeded from a local literal: seeds must flow from the "
        "experiment config (GridPoint/SimConfig seed), not be forged here",
    }

    def check(self, graph: ProjectGraph) -> Iterator[Violation]:
        for module in sorted(graph.modules):
            if not _matches_prefix(module, self.scopes):
                continue
            summary = graph.modules[module]
            for site in summary.rng_sites:
                if site.verdict.startswith("ok:"):
                    continue
                where = site.func or "<module>"
                if site.verdict in self._MESSAGES:
                    message = self._MESSAGES[site.verdict]
                elif site.verdict.startswith("param:"):
                    pname = site.verdict.split(":", 1)[1]
                    message = (
                        f"RNG seeded from parameter '{pname}', which is not "
                        "named as a seed; rename it (seed/*_seed/rng/*_rng) "
                        "so provenance is visible across call boundaries"
                    )
                else:
                    detail = site.verdict.split(":", 1)[-1]
                    message = (
                        f"RNG argument '{detail}' has no visible seed "
                        "provenance; derive it from an explicit seed parameter"
                    )
                yield self.violation(
                    summary.path,
                    site.line,
                    f"{message} (in {where}, via {site.call})",
                    key=f"{module}:{where}:{site.call}",
                    col=site.col,
                )


class ObsGuardRule(ProgramRule):
    """FLOW002: hot-path obs metric calls run only behind the guard.

    A site passes when it is lexically inside an ``if _obs.ENABLED:``
    block (or an alias of it), or when its enclosing function is only
    ever called from guarded sites — established by a least-fixpoint
    "unsafe" propagation over the intra-module call graph: a function
    with no known callers is unsafe (anyone may call it cold), and
    unsafety flows through unguarded call edges.  The guard analysis
    under-approximates, so an unproven guard is reported, never assumed.
    """

    rule_id = "FLOW002"
    summary = "obs metric calls in hot paths must sit behind the ENABLED guard"

    def __init__(self, scopes: Sequence[str] | None = None) -> None:
        self.scopes = tuple(
            scopes
            if scopes is not None
            else (
                "repro.sim",
                "repro.core",
                "repro.cache",
                "repro.codes",
                "repro.engine",
                "repro.lrc",
            )
        )

    @staticmethod
    def _unsafe_functions(summary) -> set[str]:
        """Least fixpoint of "may run with obs disabled" per function."""
        callers: dict[str, list[tuple[str, bool]]] = {
            f.qualname: [] for f in summary.funcs
        }
        for f in summary.funcs:
            for call in f.calls:
                if call.callee not in callers:
                    continue  # cross-module or unknown: evaluated elsewhere
                callers[call.callee].append((f.qualname, call.guarded))
        unsafe = {q for q, incoming in callers.items() if not incoming}
        changed = True
        while changed:
            changed = False
            for q in callers:
                if q in unsafe:
                    continue
                for caller, guarded in callers[q]:
                    if not guarded and caller in unsafe:
                        unsafe.add(q)
                        changed = True
                        break
        return unsafe

    def check(self, graph: ProjectGraph) -> Iterator[Violation]:
        for module in sorted(graph.modules):
            if not _matches_prefix(module, self.scopes):
                continue
            summary = graph.modules[module]
            if not summary.obs_sites:
                continue
            unsafe = self._unsafe_functions(summary)
            ordinals: dict[tuple[str, str], int] = {}
            for site in summary.obs_sites:
                ordinal_key = (site.func, site.accessor)
                ordinals[ordinal_key] = ordinals.get(ordinal_key, 0) + 1
                if site.guarded:
                    continue
                if site.func and site.func not in unsafe:
                    continue  # only reachable through guarded call chains
                where = site.func or "<module>"
                yield self.violation(
                    summary.path,
                    site.line,
                    f"obs.{site.accessor}() in hot path '{where}' is not "
                    "behind the ENABLED guard; wrap it in 'if _obs.ENABLED:' "
                    "or ensure every caller is guarded",
                    key=(
                        f"{module}:{where}:{site.accessor}"
                        f"#{ordinals[ordinal_key]}"
                    ),
                    col=site.col,
                )


def default_manifest_dir() -> Path:
    """Where the per-namespace v2 manifests live (one file per namespace)."""
    return Path(__file__).parent / "api_manifest_v2"


def default_manifest_path(namespace: str | None = None) -> Path:
    """Manifest path for one v2 namespace (None = the legacy v1 file)."""
    if namespace is None:
        return Path(__file__).parent / "api_manifest.txt"
    if namespace not in V2_NAMESPACES:
        raise KeyError(
            f"unknown api namespace {namespace!r}; "
            f"known: {', '.join(sorted(V2_NAMESPACES))}"
        )
    return default_manifest_dir() / f"{namespace}.txt"


def _resolved_exports(graph: ProjectGraph, api_module: str) -> dict[str, str]:
    """Export name -> resolved origin ("module:symbol", "module" or "?")."""
    summary = graph.modules.get(api_module)
    if summary is None:
        return {}
    resolved: dict[str, str] = {}
    for name in summary.all_names:
        target = graph.resolve_symbol(api_module, name)
        if target is None:
            resolved[name] = "?"
        elif target[1]:
            resolved[name] = f"{target[0]}:{target[1]}"
        else:
            resolved[name] = target[0]
    return resolved


def render_manifest(graph: ProjectGraph, api_module: str = "repro.api") -> str:
    """The manifest text for the current graph (``--update-api-manifest``)."""
    exports = _resolved_exports(graph, api_module)
    lines = [
        f"# {api_module} exported surface — checked by API001.",
        "# Regenerate with: repro-fbf check --update-api-manifest",
        "# Format: <export-name> = <defining-module>[:<symbol>]",
    ]
    lines.extend(f"{name} = {exports[name]}" for name in sorted(exports))
    return "\n".join(lines) + "\n"


class ApiManifestRule(ProgramRule):
    """API001: a facade namespace matches its committed manifest.

    One instance gates one module against one manifest file; the default
    rule set runs one instance per :data:`V2_NAMESPACES` entry, so a
    surface change in (say) ``api.v2.serve`` diffs against
    ``api_manifest_v2/serve.txt`` alone — the other namespaces' files
    stay byte-identical and reviewable in isolation.
    """

    rule_id = "API001"
    summary = "repro.api exports must match the committed manifest"

    def __init__(
        self,
        manifest_path: str | Path | None = None,
        api_module: str = "repro.api",
    ) -> None:
        self.manifest_path = Path(
            manifest_path if manifest_path is not None else default_manifest_path()
        )
        self.api_module = api_module

    def _read_manifest(self) -> dict[str, str] | None:
        if not self.manifest_path.is_file():
            return None
        entries: dict[str, str] = {}
        for raw in self.manifest_path.read_text(encoding="utf-8").splitlines():
            text = raw.strip()
            if not text or text.startswith("#"):
                continue
            name, _, origin = text.partition("=")
            entries[name.strip()] = origin.strip()
        return entries

    def check(self, graph: ProjectGraph) -> Iterator[Violation]:
        summary = graph.modules.get(self.api_module)
        if summary is None:
            return
        current = _resolved_exports(graph, self.api_module)
        committed = self._read_manifest()
        if committed is None:
            yield self.violation(
                summary.path,
                1,
                f"no API manifest at {self.manifest_path}; run "
                "'repro-fbf check --update-api-manifest' and commit it",
                key="manifest:missing",
            )
            return
        for name in sorted(set(current) - set(committed)):
            yield self.violation(
                summary.path,
                1,
                f"export '{name}' ({current[name]}) is not in the API "
                "manifest; if intentional, refresh with --update-api-manifest",
                key=f"export:{name}",
            )
        for name in sorted(set(committed) - set(current)):
            yield self.violation(
                summary.path,
                1,
                f"manifest entry '{name}' is no longer exported by "
                f"{self.api_module}; removing an export is a breaking change "
                "— refresh the manifest to acknowledge it",
                key=f"export:{name}",
            )
        for name in sorted(set(committed) & set(current)):
            if committed[name] != current[name]:
                yield self.violation(
                    summary.path,
                    1,
                    f"export '{name}' now resolves to {current[name]} "
                    f"(manifest says {committed[name]}); refresh the manifest "
                    "to acknowledge the move",
                    key=f"export:{name}",
                )
        for name in sorted(n for n, origin in current.items() if origin == "?"):
            yield self.violation(
                summary.path,
                1,
                f"export '{name}' is in __all__ but resolves to nothing "
                "importable in the analyzed tree",
                key=f"unresolved:{name}",
            )


ALL_PROGRAM_RULES: tuple[ProgramRule, ...] = (
    LayerRule(),
    DeadDefRule(),
    SeedProvenanceRule(),
    ObsGuardRule(),
    *(
        ApiManifestRule(
            manifest_path=default_manifest_path(namespace),
            api_module=module,
        )
        for namespace, module in V2_NAMESPACES.items()
    ),
)
