"""Runtime sanitizer for the FBF cache and the event kernel.

``simlint`` (the static half of :mod:`repro.checks`) proves properties of
the *source*; this module asserts the matching properties of a *running*
simulation:

* :class:`SimSanitizer` wraps any replacement policy and, after every
  ``request``, re-validates the accounting every policy must keep
  (stats deltas, occupancy vs. capacity, hit ⇔ prior residency).  When
  the wrapped policy is the paper's :class:`~repro.core.fbf_cache.FBFCache`
  it additionally checks Algorithm 1 step by step:

  - **single residency** — every cached chunk sits in exactly one of the
    priority queues, and the queue index recorded for it matches;
  - **demotion order** — a hit in Queue *q* > 1 moves the chunk to the
    MRU end of Queue *q - 1* (or only refreshes recency when
    ``demote_on_hit`` is off or *q* == 1), never skipping levels;
  - **capacity accounting** — queue lengths always sum to the policy's
    occupancy, occupancy never exceeds capacity, and an admission into a
    full cache evicts exactly one block.

* :class:`SanitizedEnvironment` subclasses the event kernel's
  :class:`~repro.sim.kernel.Environment` and asserts *order stability*:
  virtual time never runs backwards and same-timestamp events fire in
  scheduling order (strictly increasing tiebreaker), so a run remains a
  pure function of its inputs.

Both are opt-in (``sanitize=True`` on the simulators) because the deep
FBF check is O(cache size) per request; tests switch them on.
"""

from __future__ import annotations


from ..cache.base import CachePolicy, Key
from ..core.fbf_cache import FBFCache
from ..sim.kernel import Environment

__all__ = ["InvariantViolation", "SimSanitizer", "SanitizedEnvironment"]


class InvariantViolation(RuntimeError):
    """A simulation invariant was broken at runtime."""


class SimSanitizer(CachePolicy):
    """Invariant-checking proxy around a replacement policy.

    Drop-in: exposes the wrapped policy's ``name``, ``stats`` and
    ``capacity``, so simulators and reports see straight through it.
    With ``strict=True`` (default) the first broken invariant raises
    :class:`InvariantViolation`; otherwise violations accumulate in
    :attr:`violations` for post-run inspection.

    Inherits the base class's generic ``request_many`` loop, so batched
    replays route every request through the checked path.
    """

    __slots__ = ("policy", "strict", "violations", "checks_run", "_is_fbf")

    def __init__(self, policy: CachePolicy, strict: bool = True):
        super().__init__(policy.capacity)
        self.policy = policy
        self.strict = strict
        self.stats = policy.stats  # share the wrapped counters
        self.violations: list[str] = []
        self.checks_run = 0
        self._is_fbf = isinstance(policy, FBFCache)

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.policy.name

    # -- proxying -----------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self.policy

    def __len__(self) -> int:
        return len(self.policy)

    def _clear(self) -> None:
        self.policy.reset()
        self.stats = self.policy.stats

    # -- reporting ----------------------------------------------------------
    def _fail(self, message: str) -> None:
        if self.strict:
            raise InvariantViolation(message)
        self.violations.append(message)

    # -- the checked request path ------------------------------------------
    def request(self, key: Key, priority: int | None = None) -> bool:
        policy = self.policy
        pre_resident = key in policy
        pre_len = len(policy)
        pre_hits = policy.stats.hits
        pre_misses = policy.stats.misses
        pre_evictions = policy.stats.evictions
        pre_queue: int | None = None
        if self._is_fbf and pre_resident:
            pre_queue = policy.queue_of(key)

        hit = policy.request(key, priority=priority)

        self.checks_run += 1
        stats = policy.stats
        if stats.hits + stats.misses != pre_hits + pre_misses + 1:
            self._fail(
                f"stats accounting drifted: one request moved hits+misses by "
                f"{stats.hits + stats.misses - pre_hits - pre_misses}"
            )
        if hit != pre_resident:
            self._fail(
                f"hit/residency mismatch for {key!r}: request returned "
                f"hit={hit} but the block was "
                f"{'resident' if pre_resident else 'absent'} beforehand"
            )
        if hit and stats.hits != pre_hits + 1:
            self._fail(f"hit on {key!r} did not increment the hit counter")
        if not hit and stats.misses != pre_misses + 1:
            self._fail(f"miss on {key!r} did not increment the miss counter")
        if len(policy) > policy.capacity:
            self._fail(
                f"occupancy {len(policy)} exceeds capacity {policy.capacity}"
            )
        if self._is_fbf:
            self._check_fbf(key, priority, hit, pre_queue, pre_len, pre_evictions)
        return hit

    # -- FBF Algorithm 1 deep checks ----------------------------------------
    def _check_fbf(
        self,
        key: Key,
        priority: int | None,
        hit: bool,
        pre_queue: int | None,
        pre_len: int,
        pre_evictions: int,
    ) -> None:
        policy: FBFCache = self.policy  # type: ignore[assignment]
        self._check_fbf_structure(policy)
        evictions = policy.stats.evictions

        if hit:
            assert pre_queue is not None
            if policy.demote_on_hit and pre_queue > 1:
                expected = pre_queue - 1
            else:
                expected = pre_queue
            self._check_fbf_position(policy, key, expected, f"hit in Queue{pre_queue}")
            if len(policy) != pre_len:
                self._fail(
                    f"hit on {key!r} changed occupancy {pre_len} -> {len(policy)}"
                )
            if evictions != pre_evictions:
                self._fail(f"hit on {key!r} triggered an eviction")
            return

        # Miss path: admission + possible eviction.
        if policy.capacity == 0:
            if len(policy) != 0:
                self._fail("capacity-0 cache admitted a block")
            return
        expected = 1 if priority is None else min(priority, policy.n_queues)
        self._check_fbf_position(policy, key, expected, "admission")
        if pre_len >= policy.capacity:
            if evictions != pre_evictions + 1:
                self._fail(
                    f"admission into a full cache evicted "
                    f"{evictions - pre_evictions} blocks (expected exactly 1)"
                )
            if len(policy) != pre_len:
                self._fail(
                    f"full-cache admission changed occupancy "
                    f"{pre_len} -> {len(policy)}"
                )
        else:
            if evictions != pre_evictions:
                self._fail("admission into a non-full cache evicted a block")
            if len(policy) != pre_len + 1:
                self._fail(
                    f"admission changed occupancy {pre_len} -> {len(policy)} "
                    f"(expected +1)"
                )

    def _check_fbf_position(
        self, policy: FBFCache, key: Key, expected_queue: int, action: str
    ) -> None:
        if key not in policy:
            self._fail(f"{action}: {key!r} is not resident afterwards")
            return
        actual = policy.queue_of(key)
        if actual != expected_queue:
            self._fail(
                f"{action}: {key!r} landed in Queue{actual}, Algorithm 1 "
                f"places it in Queue{expected_queue}"
            )
            return
        contents = policy.queue_contents(actual)
        if not contents or contents[-1] != key:
            self._fail(
                f"{action}: {key!r} is not at the MRU end of Queue{actual}"
            )

    def _check_fbf_structure(self, policy: FBFCache) -> None:
        """Single residency + queue-length accounting, O(occupancy)."""
        seen: dict[Key, int] = {}
        total = 0
        for queue in range(1, policy.n_queues + 1):
            contents = policy.queue_contents(queue)
            total += len(contents)
            for entry in contents:
                if entry in seen:
                    self._fail(
                        f"{entry!r} is resident in Queue{seen[entry]} and "
                        f"Queue{queue} simultaneously"
                    )
                seen[entry] = queue
                recorded = policy.queue_of(entry)
                if recorded != queue:
                    self._fail(
                        f"{entry!r} sits in Queue{queue} but queue_of() "
                        f"says Queue{recorded}"
                    )
        if total != len(policy):
            self._fail(
                f"queue lengths sum to {total} but occupancy is {len(policy)}"
            )


class SanitizedEnvironment(Environment):
    """Event kernel that asserts order stability while it runs.

    Every processed event must be (a) not yet processed, (b) scheduled at
    or after the current virtual time, and (c) for equal timestamps, in
    strictly increasing scheduling order — the kernel's determinism
    contract from :mod:`repro.sim.kernel`.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        strict: bool = True,
        *,
        pooling: bool = True,
    ):
        super().__init__(initial_time, pooling=pooling)
        self.strict = strict
        self.violations: list[str] = []
        self.events_checked = 0
        self._last_when = float("-inf")
        self._last_counter = -1

    def _fail(self, message: str) -> None:
        if self.strict:
            raise InvariantViolation(message)
        self.violations.append(message)

    def step(self) -> None:
        # Peek at whichever queue head the kernel will dispatch next, using
        # the same fast-lane-vs-heap selection rule as Environment.step —
        # fast-lane entries always sit at the current clock.
        fast = self._fast
        heap = self._heap
        if fast and (not heap or heap[0][0] > self.now or heap[0][1] > fast[0][0]):
            counter, event = fast[0]
            when = self.now
        else:
            when, counter, event = heap[0]
        self.events_checked += 1
        if when < self.now:
            self._fail(
                f"virtual time ran backwards: event at t={when} fired at "
                f"now={self.now}"
            )
        if when == self._last_when and counter <= self._last_counter:
            self._fail(
                f"same-timestamp ordering violated at t={when}: event "
                f"#{counter} fired after #{self._last_counter}"
            )
        if event.processed:
            self._fail(f"{event!r} was processed twice")
        self._last_when, self._last_counter = when, counter
        super().step()
        if not event.processed:
            self._fail(f"step() completed but {event!r} is not processed")
