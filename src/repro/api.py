"""``repro.api`` — the stable public facade (DESIGN.md §12).

Everything a downstream script needs, under one import, with one kwarg
vocabulary.  The deep module paths (``repro.engine.tracesim``,
``repro.bench.engine``, ...) remain importable but are internal: they
may reorganize between releases, while the names re-exported here follow
a deprecation policy (old spellings keep working for one release behind
a :class:`DeprecationWarning` before removal).

The vocabulary:

* ``workers=`` — always the *simulated* SOR worker count;
* ``engine=`` / ``engine_workers=`` — how a grid is executed (process
  pool, result cache, batching) — never affects simulated values;
* ``batch=`` — single-pass group replay on/off;
* ``sanitize=`` — wrap policies in the runtime invariant sanitizer.

Typical use::

    from repro import api

    backend = api.make_backend("tip", 7)
    events = backend.generate_events(100, seed=42)
    row = api.simulate_trace(backend, events, policy="fbf",
                             capacity_blocks=256, workers=32)

    grid = api.experiment_grid("fig8", api.QUICK)
    result = api.run_grid(grid, engine_workers="auto")
    print(result.cache_hits, result.plan_cache_hits)

    registry = api.obs.enable(fresh=True)
    ...
"""

from __future__ import annotations

from typing import Callable, Sequence

from . import obs
from .bench.engine import (
    ENGINE_CACHE_VERSION,
    EngineConfig,
    EngineResult,
    GridPoint,
    PointTiming,
    ResultCache,
    default_cache_dir,
)
from .bench.engine import run_grid as _run_grid
from .bench.experiments import (
    EXPERIMENT_NAMES,
    FULL,
    QUICK,
    Scale,
    SweepPoint,
    cluster_grid,
    experiment_grid,
    rows_equivalent,
)
from .cache.registry import PAPER_BASELINES, available_policies, make_policy
from .codes.registry import available_codes, make_code
from .engine.backend import CodeBackend, EnginePlan, PriorityModel
from .engine.registry import available_backends, make_backend, register_backend
from .engine.stackdist import SampledStackDistanceProfile, StackDistanceProfile
from .engine.stream import (
    InternedStream,
    ReplayConfig,
    intern_stream,
    simulate_grid_pass,
)
from .engine.tracesim import (
    PlanCache,
    TraceSimResult,
    effective_partition,
    simulate_trace,
)
from .engine.vector import (
    NUMPY_AVAILABLE,
    VECTOR_POLICIES,
    VectorFleet,
    VectorReplay,
)
from .sim.cluster import ClusterReport, ClusterSpec, run_cluster_recovery
from .sim.topology import TopologySpec

__all__ = [
    # replay engine
    "simulate_trace",
    "TraceSimResult",
    "PlanCache",
    "effective_partition",
    "intern_stream",
    "InternedStream",
    "ReplayConfig",
    "simulate_grid_pass",
    # vector backend + stack-distance profiles
    "NUMPY_AVAILABLE",
    "VECTOR_POLICIES",
    "VectorFleet",
    "VectorReplay",
    "StackDistanceProfile",
    "SampledStackDistanceProfile",
    # registries
    "available_codes",
    "make_code",
    "available_policies",
    "make_policy",
    "PAPER_BASELINES",
    "available_backends",
    "make_backend",
    "register_backend",
    "CodeBackend",
    "EnginePlan",
    "PriorityModel",
    # sweep engine
    "run_grid",
    "GridPoint",
    "EngineConfig",
    "EngineResult",
    "PointTiming",
    "ResultCache",
    "ENGINE_CACHE_VERSION",
    "default_cache_dir",
    "experiment_grid",
    "rows_equivalent",
    "EXPERIMENT_NAMES",
    "Scale",
    "QUICK",
    "FULL",
    "SweepPoint",
    # rack-aware cluster scenario
    "ClusterReport",
    "ClusterSpec",
    "TopologySpec",
    "cluster_grid",
    "run_cluster_recovery",
    # observability
    "obs",
]


def run_grid(
    points: Sequence[GridPoint],
    engine: EngineConfig | None = None,
    on_progress: Callable[[int, int], None] | None = None,
    *,
    engine_workers: int | str | None = None,
    cache_dir=None,
    batch: bool | None = None,
) -> EngineResult:
    """Execute a grid of points; see :func:`repro.bench.engine.run_grid`.

    Either pass a full ``engine=`` :class:`EngineConfig`, or use the
    keyword conveniences (``engine_workers=``, ``cache_dir=``,
    ``batch=``) and let the facade assemble one — mixing both is an
    error.
    """
    conveniences = (engine_workers, cache_dir, batch)
    if engine is not None:
        if any(value is not None for value in conveniences):
            raise TypeError(
                "pass either engine= or the engine_workers/cache_dir/batch "
                "conveniences, not both"
            )
    elif any(value is not None for value in conveniences):
        engine = EngineConfig(
            workers=engine_workers if engine_workers is not None else 0,
            cache_dir=cache_dir,
            batch=batch if batch is not None else True,
        )
    return _run_grid(points, engine, on_progress)
