"""Small shared helpers: primality, size parsing, deterministic RNG."""

from __future__ import annotations

import numpy as np

__all__ = ["is_prime", "require_prime", "parse_size", "format_size", "make_rng"]

_UNITS = {
    "B": 1,
    "KB": 1024,
    "MB": 1024**2,
    "GB": 1024**3,
    "TB": 1024**4,
}


def is_prime(n: int) -> bool:
    """Deterministic primality test for the small primes used by array codes."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def require_prime(p: int, what: str = "p") -> int:
    if not isinstance(p, int) or not is_prime(p):
        raise ValueError(f"{what} must be a prime integer, got {p!r}")
    return p


def parse_size(text: str | int) -> int:
    """Parse ``"32KB"`` / ``"2MB"`` / plain ints into bytes."""
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"negative size {text}")
        return text
    s = text.strip().upper().replace(" ", "")
    for suffix in sorted(_UNITS, key=len, reverse=True):
        if s.endswith(suffix):
            num = s[: -len(suffix)]
            try:
                value = float(num)
            except ValueError as exc:
                raise ValueError(f"cannot parse size {text!r}") from exc
            return int(value * _UNITS[suffix])
    try:
        return int(s)
    except ValueError as exc:
        raise ValueError(f"cannot parse size {text!r}") from exc


def format_size(nbytes: int) -> str:
    """Human-readable size, preferring exact binary multiples."""
    if nbytes < 0:
        raise ValueError(f"negative size {nbytes}")
    for suffix in ("TB", "GB", "MB", "KB"):
        unit = _UNITS[suffix]
        if nbytes >= unit and nbytes % unit == 0:
            return f"{nbytes // unit}{suffix}"
    for suffix in ("TB", "GB", "MB", "KB"):
        unit = _UNITS[suffix]
        if nbytes >= unit:
            return f"{nbytes / unit:.1f}{suffix}"
    return f"{nbytes}B"


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize seeds/generators into a ``numpy`` Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
