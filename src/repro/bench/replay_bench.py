"""The grid-replay microbench: batched single pass vs. per-point replay.

Times the Figure 8 hit-ratio grid (the paper's policies over the FULL
cache-size axis) through :func:`~repro.engine.stream.simulate_grid_pass`
and through per-point :func:`~repro.engine.simulate_trace`, on one core,
for every code family — and, when numpy is available, through the
vector backend (``replay_backend="numpy"``), whose fleet solve is the
third timing axis.  The resulting ``BENCH_replay.json`` is committed
as the perf baseline; CI re-runs the bench and fails when

* the measured speedup (python-batched *or* numpy) falls more than 10%
  below the committed baseline (each is a ratio of two single-core
  timings from the same machine and run, so the check is
  machine-independent), or
* any row differs between the paths — the equivalence contract — or
* the SHARDS-sampled stack-distance profile strays more than the
  committed absolute hit-ratio error bound from the exact Fenwick one.

A separate identity sweep covers *every* registry policy (including the
stepped-only ones) and both states of the LRU stack-distance lever, at a
smaller scale, so exactness is re-proven where the timed grid does not
reach.

Run directly: ``python -m repro.bench.replay_bench --out BENCH_replay.json``
or ``--check benchmarks/BENCH_replay.json`` for the CI gate.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

from ..cache.registry import available_policies
from ..engine import (
    NUMPY_AVAILABLE,
    PlanCache,
    SampledStackDistanceProfile,
    StackDistanceProfile,
    intern_stream,
    make_backend,
    simulate_grid_pass,
    simulate_trace,
)
from ..engine.stream import ReplayConfig
from ..obs import emit
from .engine import _git_rev
from ..cache.registry import PAPER_BASELINES
from .experiments import FULL

__all__ = [
    "DEFAULT_CODES",
    "ReplayGroupResult",
    "run_replay_bench",
    "compare_to_baseline",
]

#: One representative geometry per code family (Figure 8's five codes).
DEFAULT_CODES = (
    ("tip", 7),
    ("hdd1", 11),
    ("star", 13),
    ("triple-star", 11),
    ("lrc(12,2,2)", 0),
)

_CHUNK = 32 * 1024  # the paper's 32 KB chunk size


def _full_capacities() -> tuple[int, ...]:
    """FULL-scale Figure 8 cache axis in blocks (8 MB .. 2048 MB)."""
    return tuple(int(mb * 1024 * 1024) // _CHUNK for mb in FULL.cache_mbs)


@dataclass(frozen=True)
class ReplayGroupResult:
    """One (code, p) group: timings + the row-equality verdict."""

    code: str
    p: int
    n_configs: int
    batched_s: float
    per_point_s: float
    rows_identical: bool
    #: vector-backend axis (None when numpy is unavailable)
    numpy_s: float | None = None
    numpy_rows_identical: bool | None = None

    @property
    def speedup(self) -> float:
        return self.per_point_s / self.batched_s if self.batched_s > 0 else 0.0

    @property
    def numpy_speedup(self) -> float | None:
        if self.numpy_s is None or self.numpy_s <= 0:
            return None
        return self.per_point_s / self.numpy_s


def _best_of(fn, rounds: int) -> float:
    """Min-of-N wall time: the stable estimator for short loops."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_group(
    code: str,
    p: int,
    policies: Sequence[str],
    capacities: Sequence[int],
    workers: int,
    n_errors: int,
    seed: int,
    rounds: int,
) -> ReplayGroupResult:
    backend = make_backend(code, p)
    events = backend.generate_events(n_errors, seed)
    plans = PlanCache(backend)
    for event in sorted(events):  # warm: measure replay, not planning
        plans.get(event)
    configs = [
        ReplayConfig(policy=policy, capacity_blocks=cap, workers=workers)
        for policy in policies
        for cap in capacities
    ]

    def batched():
        # no pre-interned stream: the batched timing pays for interning
        return simulate_grid_pass(backend, events, configs, plan_cache=plans)

    def vectored():
        # same protocol: the numpy timing pays for interning too
        return simulate_grid_pass(
            backend, events, configs, plan_cache=plans, replay_backend="numpy"
        )

    def per_point():
        return [
            simulate_trace(
                backend,
                events,
                policy=c.policy,
                capacity_blocks=c.capacity_blocks,
                workers=c.workers,
                plan_cache=plans,
            )
            for c in configs
        ]

    reference = per_point()
    identical = batched() == reference
    numpy_s = numpy_identical = None
    if NUMPY_AVAILABLE:
        numpy_identical = vectored() == reference
        numpy_s = _best_of(vectored, rounds)
    return ReplayGroupResult(
        code=backend.code_label,
        p=p,
        n_configs=len(configs),
        batched_s=_best_of(batched, rounds),
        per_point_s=_best_of(per_point, rounds),
        rows_identical=identical,
        numpy_s=numpy_s,
        numpy_rows_identical=numpy_identical,
    )


def _verify_identity(
    codes: Sequence[tuple[str, int]],
    workers: int = 32,
    n_errors: int = 24,
    seed: int = 7,
    capacities: Sequence[int] = (32, 64, 512),
) -> dict:
    """Exactness sweep: every registry policy, both fast-path states."""
    policies = sorted(available_policies())
    all_identical = True
    lru_fast_identical = True
    for code, p in codes:
        backend = make_backend(code, p)
        events = backend.generate_events(n_errors, seed)
        configs = [
            ReplayConfig(policy=policy, capacity_blocks=cap, workers=workers)
            for policy in policies
            for cap in capacities
        ]
        fast = simulate_grid_pass(backend, events, configs)
        stepped = simulate_grid_pass(backend, events, configs, lru_fast_path=False)
        expected = [
            simulate_trace(
                backend,
                events,
                policy=c.policy,
                capacity_blocks=c.capacity_blocks,
                workers=c.workers,
            )
            for c in configs
        ]
        all_identical = all_identical and fast == expected
        lru_fast_identical = lru_fast_identical and fast == stepped
    return {
        "codes": [code for code, _ in codes],
        "policies": policies,
        "workers": workers,
        "n_errors": n_errors,
        "capacities_blocks": list(capacities),
        "rows_identical": all_identical,
        "lru_fast_path_identical": lru_fast_identical,
    }


def _shards_check(
    codes: Sequence[tuple[str, int]],
    n_errors: int,
    seed: int,
    rate: float = 0.01,
    bound: float = 0.01,
) -> dict:
    """SHARDS evidence: sampled vs exact LRU hit ratios on full streams.

    Profiles each code's whole interned request stream (no SOR deal)
    with the exact Fenwick profile and the SHARDS profile at ``rate``,
    at ``n_errors`` ten times the timed axis: spatial sampling is a
    *scale* tool, and at the timed grid's stream sizes a 1% sample is
    tens of blocks — far too few to estimate anything.  The amplified
    stream (~0.5M requests for STAR) is the smallest regime the paper's
    100-1000x trace-scale claim starts in,
    and reports the worst absolute hit-ratio error across a capacity
    axis spanning the curve, plus the tracked-set evidence that memory
    is O(sample): ``peak_tracked`` blocks vs the stream's distinct
    blocks.  The committed ``within_bound`` verdict is CI-gated.
    """
    worst = 0.0
    groups = []
    min_requests = 300_000  # keep every code in the sampling regime
    for code, p in codes:
        backend = make_backend(code, p)
        events = backend.generate_events(n_errors, seed)
        stream = intern_stream(
            backend, events, plan_cache=PlanCache(backend)
        )
        requests = stream.total_requests
        if 0 < requests < min_requests:
            # Short-plan codes (TIP/LRC) produce far fewer requests per
            # error than STAR: amplify until the stream is large enough
            # that a 1% spatial sample has hundreds of blocks.
            scale = -(-min_requests // requests)
            events = backend.generate_events(scale * n_errors, seed)
            stream = intern_stream(
                backend, events, plan_cache=PlanCache(backend)
            )
        bids = stream.bids
        requests = len(bids)
        if requests == 0:
            continue
        exact = StackDistanceProfile(bids)
        sampled = SampledStackDistanceProfile(bids, rate=rate)
        n_blocks = stream.n_blocks
        caps = sorted({
            max(1, int(n_blocks * f))
            for f in (0.001, 0.005, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0)
        })
        err = max(
            abs(exact.hits_at(c) - sampled.estimated_hits_at(c)) / requests
            for c in caps
        )
        worst = max(worst, err)
        groups.append({
            "code": backend.code_label,
            "requests": requests,
            "distinct_blocks": n_blocks,
            "peak_tracked": sampled.peak_tracked,
            "tracked_fraction": sampled.peak_tracked / max(n_blocks, 1),
            "max_abs_hit_ratio_err": err,
        })
    return {
        "rate": rate,
        "bound": bound,
        "n_errors": n_errors,
        "capacities": "geometric over each stream's distinct blocks",
        "groups": groups,
        "max_abs_hit_ratio_err": worst,
        "within_bound": worst <= bound,
    }


def run_replay_bench(
    codes: Sequence[tuple[str, int]] = DEFAULT_CODES,
    policies: Sequence[str] = PAPER_BASELINES + ("fbf",),
    capacities: Sequence[int] | None = None,
    workers: int = 128,
    n_errors: int = 400,
    seed: int = 42,
    rounds: int = 2,
    verify_all_policies: bool = True,
) -> dict:
    """Run the replay microbench and return the BENCH_replay payload."""
    if capacities is None:
        capacities = _full_capacities()
    groups = [
        _bench_group(
            code, p, policies, capacities, workers, n_errors, seed, rounds
        )
        for code, p in codes
    ]
    batched_s = sum(g.batched_s for g in groups)
    per_point_s = sum(g.per_point_s for g in groups)
    numpy_s = (
        sum(g.numpy_s for g in groups)
        if groups and all(g.numpy_s is not None for g in groups)
        else None
    )
    payload: dict = {
        "schema": 1,
        "kind": "replay-microbench",
        "git_rev": _git_rev(),
        "workers": workers,
        "n_errors": n_errors,
        "seed": seed,
        "rounds": rounds,
        "policies": list(policies),
        "capacities_blocks": list(capacities),
        "groups": [
            {**asdict(g), "speedup": g.speedup,
             "numpy_speedup": g.numpy_speedup}
            for g in groups
        ],
        "aggregate": {
            "batched_s": batched_s,
            "per_point_s": per_point_s,
            "speedup": per_point_s / batched_s if batched_s > 0 else 0.0,
            "numpy_s": numpy_s,
            "numpy_speedup": (
                per_point_s / numpy_s if numpy_s else None
            ),
        },
    }
    if verify_all_policies:
        payload["identity"] = _verify_identity(codes)
    payload["shards"] = _shards_check(codes, 10 * n_errors, seed)
    return payload


def compare_to_baseline(
    current: dict,
    baseline: dict,
    tolerance: float = 0.10,
    time_tolerance: float | None = None,
) -> tuple[bool, str]:
    """CI gate: speedup within ``tolerance`` of the committed baseline.

    Speedups are ratios of two timings from the *same* machine and run,
    so comparing them across machines is sound where raw seconds are not.

    ``time_tolerance`` additionally gates the *aggregate wall time*
    (batched + per-point seconds) against the baseline's — the obs
    overhead contract (instrumentation disabled must cost nothing).  Raw
    seconds are machine-dependent, so this gate only makes sense when
    baseline and current ran on comparable hardware; it is off by
    default and opted into by CI with ``--time-tolerance``.
    """
    problems: list[str] = []
    for group in current["groups"]:
        if not group["rows_identical"]:
            problems.append(
                f"{group['code']}: batched rows differ from per-point rows"
            )
        if group.get("numpy_rows_identical") is False:
            problems.append(
                f"{group['code']}: numpy rows differ from per-point rows"
            )
    identity = current.get("identity")
    if identity is not None:
        if not identity["rows_identical"]:
            problems.append("identity sweep: grid pass diverged from per-point")
        if not identity["lru_fast_path_identical"]:
            problems.append("identity sweep: LRU stack-distance path diverged")
    current_speedup = current["aggregate"]["speedup"]
    baseline_speedup = baseline["aggregate"]["speedup"]
    floor = baseline_speedup * (1.0 - tolerance)
    if current_speedup < floor:
        problems.append(
            f"aggregate speedup {current_speedup:.2f}x fell below "
            f"{floor:.2f}x (baseline {baseline_speedup:.2f}x - {tolerance:.0%})"
        )
    cur_np = current["aggregate"].get("numpy_speedup")
    base_np = baseline["aggregate"].get("numpy_speedup")
    if cur_np is not None and base_np:
        np_floor = base_np * (1.0 - tolerance)
        if cur_np < np_floor:
            problems.append(
                f"numpy speedup {cur_np:.2f}x fell below {np_floor:.2f}x "
                f"(baseline {base_np:.2f}x - {tolerance:.0%})"
            )
    shards = current.get("shards")
    if shards is not None and not shards["within_bound"]:
        problems.append(
            f"SHARDS error {shards['max_abs_hit_ratio_err']:.4f} exceeds "
            f"the {shards['bound']:.2f} absolute hit-ratio bound"
        )
    if time_tolerance is not None:
        current_s = current["aggregate"]["batched_s"] + current["aggregate"]["per_point_s"]
        baseline_s = (
            baseline["aggregate"]["batched_s"] + baseline["aggregate"]["per_point_s"]
        )
        ceiling = baseline_s * (1.0 + time_tolerance)
        if current_s > ceiling:
            problems.append(
                f"aggregate time {current_s:.2f}s exceeds {ceiling:.2f}s "
                f"(baseline {baseline_s:.2f}s + {time_tolerance:.0%})"
            )
    if problems:
        return False, "; ".join(problems)
    return True, (
        f"speedup {current_speedup:.2f}x vs baseline "
        f"{baseline_speedup:.2f}x (tolerance {tolerance:.0%})"
    )


def _format_summary(payload: dict) -> str:
    def _np_cols(numpy_s, numpy_speedup):
        if numpy_s is None:
            return f"{'-':>9} {'-':>8}"
        return f"{numpy_s:>8.2f}s {numpy_speedup:>7.2f}x"

    lines = [
        f"{'group':>16} {'configs':>7} {'batched':>9} {'per-point':>9} "
        f"{'speedup':>8} {'numpy':>9} {'np-spdup':>8}"
    ]
    for g in payload["groups"]:
        lines.append(
            f"{g['code'] + ' p=' + str(g['p']):>16} {g['n_configs']:>7} "
            f"{g['batched_s']:>8.2f}s {g['per_point_s']:>8.2f}s "
            f"{g['speedup']:>7.2f}x "
            + _np_cols(g.get("numpy_s"), g.get("numpy_speedup"))
            + ("" if g["rows_identical"] else "  ROWS DIVERGED")
            + ("" if g.get("numpy_rows_identical") is not False
               else "  NUMPY ROWS DIVERGED")
        )
    agg = payload["aggregate"]
    lines.append(
        f"{'aggregate':>16} {'':>7} {agg['batched_s']:>8.2f}s "
        f"{agg['per_point_s']:>8.2f}s {agg['speedup']:>7.2f}x "
        + _np_cols(agg.get("numpy_s"), agg.get("numpy_speedup"))
    )
    shards = payload.get("shards")
    if shards is not None:
        verdict = "OK" if shards["within_bound"] else "EXCEEDED"
        lines.append(
            f"SHARDS @ rate={shards['rate']:g}: max |hit-ratio err| = "
            f"{shards['max_abs_hit_ratio_err']:.5f} "
            f"(bound {shards['bound']:.2f}: {verdict})"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-replay-bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", help="write the BENCH_replay.json payload here")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed BENCH_replay.json; exit 1 on "
        "row divergence or >10%% speedup regression",
    )
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional speedup regression for --check (default 0.10)",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=None, metavar="FRACTION",
        help="also gate aggregate wall time against the baseline's "
        "(the obs zero-overhead contract; off by default because raw "
        "seconds are machine-dependent)",
    )
    args = parser.parse_args(argv)

    payload = run_replay_bench(rounds=args.rounds)
    emit(_format_summary(payload))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        emit(f"wrote {out}")
    if args.check:
        baseline = json.loads(Path(args.check).read_text(encoding="utf-8"))
        ok, message = compare_to_baseline(
            payload,
            baseline,
            tolerance=args.tolerance,
            time_tolerance=args.time_tolerance,
        )
        emit(("PASS: " if ok else "FAIL: ") + message)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
