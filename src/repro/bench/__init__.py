"""Experiment harness: runners for every paper figure/table + reporting."""

from .experiments import (
    FULL,
    POLICY_ORDER,
    QUICK,
    Scale,
    SweepPoint,
    ablation_demotion,
    ablation_scheme,
    fig8_hit_ratio,
    fig9_read_ops,
    fig10_response_time,
    fig11_reconstruction_time,
    table4_overhead,
    table5_max_improvement,
)
from .full_report import write_full_report
from .reporting import figure_report, series_table, table4_report, table5_report

__all__ = [
    "FULL",
    "POLICY_ORDER",
    "QUICK",
    "Scale",
    "SweepPoint",
    "ablation_demotion",
    "ablation_scheme",
    "fig8_hit_ratio",
    "fig9_read_ops",
    "fig10_response_time",
    "fig11_reconstruction_time",
    "table4_overhead",
    "table5_max_improvement",
    "figure_report",
    "series_table",
    "table4_report",
    "table5_report",
    "write_full_report",
]
