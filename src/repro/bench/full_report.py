"""One-shot regeneration of every paper figure and table.

``write_full_report`` runs the complete evaluation at a chosen scale and
writes one text report per experiment plus an index — the automated
counterpart of EXPERIMENTS.md.  Exposed as ``repro-fbf report``.  Pass an
:class:`~repro.bench.engine.EngineConfig` to fan every sweep out across a
process pool and reuse the persistent result cache; output files are
identical either way.
"""

from __future__ import annotations

import time
from pathlib import Path

from .engine import EngineConfig
from .experiments import (
    Scale,
    ablation_demotion,
    ablation_scheme,
    fig8_hit_ratio,
    fig9_read_ops,
    fig10_response_time,
    fig11_reconstruction_time,
    lrc_hit_ratio,
    table4_overhead,
    table5_max_improvement,
)
from .reporting import figure_report, table4_report, table5_report

__all__ = ["write_full_report"]


def write_full_report(
    scale: Scale, out_dir: str | Path, engine: EngineConfig | None = None
) -> list[Path]:
    """Run every experiment at ``scale``; write reports into ``out_dir``.

    Returns the written paths (index first).  Sweeps feeding several
    reports (Figures 8–11 also feed Table V) run once.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    timings: list[tuple[str, float]] = []

    def save(name: str, text: str) -> None:
        path = out / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        written.append(path)

    def timed(name, fn, *args, **kwargs):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        timings.append((name, time.perf_counter() - t0))
        return result

    fig8 = timed("fig8", fig8_hit_ratio, scale, engine=engine)
    save("fig8_hit_ratio", figure_report(fig8, "hit_ratio", "Figure 8: cache hit ratio"))

    fig9 = timed("fig9", fig9_read_ops, scale, engine=engine)
    save("fig9_read_ops", figure_report(fig9, "disk_reads", "Figure 9: disk reads (TIP)", "d"))

    fig10 = timed("fig10", fig10_response_time, scale, engine=engine)
    save(
        "fig10_response_time",
        figure_report(fig10, "avg_response_time", "Figure 10: average response time (s)", ".5f"),
    )

    fig11 = timed("fig11", fig11_reconstruction_time, scale, engine=engine)
    save(
        "fig11_reconstruction_time",
        figure_report(fig11, "reconstruction_time", "Figure 11: reconstruction time (s, TIP)", ".3f"),
    )

    t4 = timed("table4", table4_overhead, scale, engine=engine)
    save("table4_overhead", table4_report(t4))

    t5 = timed(
        "table5", table5_max_improvement, scale, fig8, fig9, fig10, fig11
    )
    save("table5_max_improvement", table5_report(t5))

    abl_s = timed("ablation_scheme", ablation_scheme, scale, engine=engine)
    save(
        "ablation_scheme",
        figure_report(abl_s, "hit_ratio", "Ablation: recovery scheme (hit ratio)"),
    )
    abl_d = timed("ablation_demotion", ablation_demotion, scale, engine=engine)
    save(
        "ablation_demotion",
        figure_report(abl_d, "hit_ratio", "Ablation: demotion on hit (hit ratio)"),
    )

    lrc = timed("lrc", lrc_hit_ratio, scale, engine=engine)
    save(
        "lrc_hit_ratio",
        figure_report(lrc, "hit_ratio", "LRC extension: cache hit ratio (DESIGN.md §9)"),
    )

    index_lines = [
        "# FBF reproduction — full report",
        f"scale: {scale.n_errors} errors, {scale.workers} workers, "
        f"cache sweep {list(scale.cache_mbs)} MB, seed {scale.seed}",
        "",
        "| experiment | file | runtime (s) |",
        "|---|---|---|",
    ]
    for (name, seconds), path in zip(timings, written):
        index_lines.append(f"| {name} | {path.name} | {seconds:.1f} |")
    index = out / "INDEX.md"
    index.write_text("\n".join(index_lines) + "\n", encoding="utf-8")
    return [index, *written]
