"""Render sweep results as the paper's tables and series.

Pure string formatting — no plotting dependencies — so reports print in a
terminal, diff cleanly, and drop straight into EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

from .experiments import POLICY_ORDER, SweepPoint

__all__ = [
    "series_table",
    "figure_report",
    "cluster_report",
    "table4_report",
    "table5_report",
    "bench_summary",
    "sparkline",
    "series_sparklines",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """Render a numeric series as a unicode sparkline.

    ``lo``/``hi`` pin the scale (useful to share one scale across several
    lines); by default the series' own min/max are used.  NaNs render as
    spaces.
    """
    clean = [v for v in values if not (isinstance(v, float) and math.isnan(v))]
    if not clean:
        return " " * len(list(values))
    lo = min(clean) if lo is None else lo
    hi = max(clean) if hi is None else hi
    span = hi - lo
    out = []
    for v in values:
        if isinstance(v, float) and math.isnan(v):
            out.append(" ")
            continue
        if span <= 0:
            out.append(_SPARK_LEVELS[0])
            continue
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[max(0, min(idx, len(_SPARK_LEVELS) - 1))])
    return "".join(out)


def series_sparklines(
    points: Sequence["SweepPoint"], metric: str,
    policies: Sequence[str] | None = None,
) -> str:
    """One sparkline per policy over the cache-size axis, shared scale."""
    policies = list(policies or sorted(
        {p.policy for p in points},
        key=lambda x: (POLICY_ORDER.index(x) if x in POLICY_ORDER else 99, x),
    ))
    sizes = sorted({p.cache_mb for p in points})
    cells = {(p.cache_mb, p.policy): getattr(p, metric) for p in points}
    all_vals = [
        v for v in cells.values()
        if not (isinstance(v, float) and math.isnan(v))
    ]
    if not all_vals:
        return "(no data)"
    lo, hi = min(all_vals), max(all_vals)
    width = max(len(p) for p in policies)
    lines = []
    for pol in policies:
        series = [cells.get((mb, pol), float("nan")) for mb in sizes]
        lines.append(f"{pol:>{width}} {sparkline(series, lo, hi)}")
    return "\n".join(lines)


def _fmt(value, spec: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and math.isnan(value):
        return "-"
    return format(value, spec)


def series_table(
    points: Sequence[SweepPoint],
    metric: str,
    spec: str = ".4f",
    policies: Sequence[str] | None = None,
) -> str:
    """One figure panel: rows = cache sizes, columns = policies."""
    policies = list(policies or sorted({p.policy for p in points},
                                       key=lambda x: (POLICY_ORDER.index(x)
                                                      if x in POLICY_ORDER else 99, x)))
    sizes = sorted({p.cache_mb for p in points})
    cells: dict[tuple[float, str], float] = {}
    for p in points:
        cells[(p.cache_mb, p.policy)] = getattr(p, metric)
    width = max(10, max(len(pol) for pol in policies) + 2)
    head = f"{'cache(MB)':>10} " + " ".join(f"{pol:>{width}}" for pol in policies)
    lines = [head, "-" * len(head)]
    for mb in sizes:
        row = [f"{mb:>10g}"]
        for pol in policies:
            row.append(f"{_fmt(cells.get((mb, pol)), spec):>{width}}")
        lines.append(" ".join(row))
    return "\n".join(lines)


def figure_report(
    points: Sequence[SweepPoint],
    metric: str,
    title: str,
    spec: str = ".4f",
) -> str:
    """A full figure: one series table per (code, p) panel."""
    panels = sorted({(p.code, p.p) for p in points})
    blocks = [f"== {title} =="]
    for code, p in panels:
        sub = [pt for pt in points if pt.code == code and pt.p == p]
        schemes = {pt.scheme_mode for pt in sub}
        by_scheme = f" scheme={min(schemes)}" if len(schemes) == 1 else ""
        blocks.append(f"\n-- {code}, P={p}{by_scheme} --")
        if len(schemes) > 1:
            # ablation layout: columns are scheme modes instead of policies
            relabeled = [
                SweepPoint(**{**pt.__dict__, "policy": pt.scheme_mode}) for pt in sub
            ]
            blocks.append(series_table(relabeled, metric, spec,
                                       policies=sorted({p.scheme_mode for p in sub})))
            blocks.append(series_sparklines(
                relabeled, metric,
                policies=sorted({p.scheme_mode for p in sub}),
            ))
        else:
            blocks.append(series_table(sub, metric, spec))
            blocks.append(series_sparklines(sub, metric))
    return "\n".join(blocks)


def cluster_report(points: Sequence[SweepPoint]) -> str:
    """The cluster sweep: EC decode vs replication, healthy then limplocked.

    A different panel shape from the figure reports — the axis is
    (redundancy, policy) under two cluster states, not cache size — so
    the cluster grid gets its own renderer instead of
    :func:`figure_report`.
    """
    order = {pol: i for i, pol in enumerate((*POLICY_ORDER, "rep"))}
    lines = ["== Cluster: cross-rack recovery (EC decode vs replication) =="]
    head = (f"{'mode':>5} {'policy':>7} {'hit':>8} {'xrack(MB)':>10} "
            f"{'recover(s)':>11} {'p99(s)':>8}")
    for limplock in (False, True):
        sub = [p for p in points if p.limplock == limplock]
        if not sub:
            continue
        state = "limplocked node" if limplock else "healthy"
        lines.append(f"\n-- {state} --")
        lines.append(head)
        lines.append("-" * len(head))
        for pt in sorted(sub, key=lambda x: (x.redundancy != "ec",
                                             order.get(x.policy, 99))):
            lines.append(
                f"{pt.redundancy:>5} {pt.policy:>7} "
                f"{_fmt(pt.hit_ratio, '.4f'):>8} "
                f"{_fmt(pt.cross_rack_mb, '.1f'):>10} "
                f"{_fmt(pt.reconstruction_time, '.3f'):>11} "
                f"{_fmt(pt.p99_response_time, '.4f'):>8}"
            )
    return "\n".join(lines)


def table4_report(points: Sequence[SweepPoint]) -> str:
    """Paper Table IV: overhead ms and % per code x P."""
    codes = sorted({p.code for p in points})
    ps = sorted({p.p for p in points})
    lines = ["== Table IV: FBF temporal overhead =="]
    head = f"{'':>22} " + " ".join(f"{c:>12}" for c in codes)
    for p in ps:
        lines.append(f"\nP = {p}")
        lines.append(head)
        row_ms, row_pct = [f"{'overhead(ms)':>22}"], [f"{'percent(%)':>22}"]
        for c in codes:
            pts = [x for x in points if x.code == c and x.p == p]
            ms = pts[0].overhead_ms if pts else float("nan")
            pct = pts[0].overhead_percent if pts else float("nan")
            row_ms.append(f"{_fmt(ms, '.3f'):>12}")
            row_pct.append(f"{_fmt(pct, '.3f'):>12}")
        lines.append(" ".join(row_ms))
        lines.append(" ".join(row_pct))
    return "\n".join(lines)


def bench_summary(experiment: str, scale_name: str, result) -> str:
    """Human-readable footer of one ``repro-fbf bench`` run.

    ``result`` is a :class:`~repro.bench.engine.EngineResult`; the
    machine-readable counterpart is ``BENCH_<experiment>.json``.
    """
    mode = "serial (in-process)" if result.workers == 0 else f"{result.workers} processes"
    lines = [
        f"== bench: {experiment} @ {scale_name} ==",
        f"{'points':>14} {result.n_points}",
        f"{'workers':>14} {mode}",
        f"{'wall time':>14} {result.wall_s:.2f} s",
        f"{'compute time':>14} {result.compute_s:.2f} s (serial-equivalent)",
        f"{'speedup':>14} {result.speedup_estimate:.2f}x",
        f"{'cache':>14} {result.cache_hits} hits, {result.cache_misses} computed",
    ]
    return "\n".join(lines)


def table5_report(result: Mapping[str, Mapping[str, float]]) -> str:
    """Paper Table V: max improvement of FBF over each baseline."""
    metrics = [
        ("hit_ratio", "Hit ratio"),
        ("disk_reads", "Number of reads in disks"),
        ("response_time", "Response time"),
        ("reconstruction_time", "Reconstruction time"),
    ]
    baselines = ["fifo", "lru", "lfu", "arc"]
    head = f"{'metric':>26} " + " ".join(f"{b.upper():>9}" for b in baselines)
    lines = ["== Table V: maximum improvement of FBF ==", head, "-" * len(head)]
    for key, label in metrics:
        row = [f"{label:>26}"]
        for b in baselines:
            val = result.get(key, {}).get(b)
            row.append(f"{_fmt(val, '.2f'):>8}%" if val is not None else f"{'-':>9}")
        lines.append(" ".join(row))
    return "\n".join(lines)
