"""The DES-kernel bench: pooled fast-lane dispatch as a CI gate.

Measures raw event-dispatch throughput of the production
:class:`~repro.sim.kernel.Environment` (free-list pools + same-time fast
lane + inlined run loop, DESIGN.md §16) against
:class:`ReferenceEnvironment` — the pre-overhaul kernel frozen in this
module: heap-only scheduling, stepwise dispatch, no pooling (the shape
``benchmarks/test_microbench.py::test_kernel_stepwise_throughput``
tracks).  Four microbench workloads cover the kernel's hot paths
(timeout chains, resource grant hand-offs, store hand-offs, container
token flow), and both kernels must dispatch *exactly* the same number of
events per workload.

On top of the throughput axis, the bench re-runs the paper's timed rows
end to end — fig10 (response time, online arrivals), fig11
(reconstruction time, batch), and the rack-aware cluster scenario — and
asserts they are **bit-identical** across pooling on/off, sanitize
on/off, and obs on/off.  All row quantities are virtual time or traffic,
so the committed ``benchmarks/BENCH_kernel.json`` baseline is
machine-independent and CI compares rows bit-exactly; the speedup axis
gates like the replay bench (≥ the floor, and no >10% regression against
the baseline).

Run directly: ``python -m repro.bench.kernel_bench --out BENCH_kernel.json``
or ``--check benchmarks/BENCH_kernel.json`` for the CI gate.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, replace
from heapq import heappop, heappush
from pathlib import Path
from typing import Callable, Sequence

from ..codes import make_code
from ..obs import emit
from ..obs import runtime as _obs
from ..sim import SimConfig, TopologySpec, run_reconstruction
from ..sim.kernel import Container, Environment, Event, Resource, Store
from ..workloads import ErrorTraceConfig, generate_errors
from .engine import _git_rev

__all__ = ["ReferenceEnvironment", "run_kernel_bench", "compare_to_baseline"]

#: Minimum acceptable event-throughput speedup over the reference kernel
#: (the tentpole's acceptance floor).
SPEEDUP_FLOOR = 1.5


class ReferenceEnvironment(Environment):
    """The pre-overhaul event kernel, frozen as the bench baseline.

    Semantics are bit-identical to :class:`~repro.sim.kernel.Environment`
    — same ``(when, counter)`` total order, same values — but every
    schedule is a ``heappush``, every dispatch a ``heappop`` through the
    stepwise ``run`` loop, and no event object is ever recycled.  The
    property suite drives random workloads through both kernels and
    asserts identical traces, so this class is the executable definition
    of "the fast lane and the pools change nothing".
    """

    def __init__(self, initial_time: float = 0.0):
        super().__init__(initial_time, pooling=False)

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._counter = counter = self._counter + 1
        heappush(self._heap, (self.now + delay, counter, event))

    def step(self) -> None:
        when, _, event = heappop(self._heap)
        self.now = when
        event._process()

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")


# ---------------------------------------------------------------------------
# Throughput workloads.  Each builds a process population on a fresh env;
# the driver runs it to quiescence and reads the dispatched-event count
# off the schedule counter (at quiescence every scheduled event has been
# processed, so the counter *is* the dispatch count).
# ---------------------------------------------------------------------------


def _wl_callback_chain(env: Environment) -> None:
    """Pure kernel dispatch through the heap: no generators, each fired
    timeout's callback schedules the next.  Isolates schedule + dispatch
    + recycle — the cost the pools exist to cut."""
    remaining = [40_000]

    def fire(ev: Event) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            env.timeout(1.0).callbacks.append(fire)

    env.timeout(1.0).callbacks.append(fire)


def _wl_succeed_chain(env: Environment) -> None:
    """Pure kernel dispatch through the fast lane: a zero-delay callback
    chain via ``schedule_now`` — deque hand-offs, no heap at all."""
    remaining = [40_000]

    def fire(ev: Event) -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            env.schedule_now().callbacks.append(fire)

    env.schedule_now().callbacks.append(fire)


def _wl_timeout_chain(env: Environment) -> None:
    """Pure heap/pool traffic: many processes sleeping in lockstep.

    The workload generators hoist bound methods into locals so the
    timed region is kernel dispatch, not user-code attribute lookups
    (the same user code runs on both kernels either way).
    """
    timeout = env.timeout

    def proc():
        for _ in range(400):
            yield timeout(1.0)

    for _ in range(48):
        env.process(proc())


def _wl_grant_chain(env: Environment) -> None:
    """Resource hand-offs: release → FIFO grant chains (fast lane)."""
    res = Resource(env, capacity=4)
    request = res.request
    release = res.release
    timeout = env.timeout

    def proc():
        for _ in range(150):
            req = request()
            yield req
            yield timeout(1.0)
            release(req)

    for _ in range(32):
        env.process(proc())


def _wl_store_handoff(env: Environment) -> None:
    """Producer/consumer hand-offs through an unbounded FIFO channel."""
    store = Store(env)
    put = store.put
    get = store.get
    timeout = env.timeout

    def producer():
        for i in range(4000):
            put(i)
            yield timeout(1.0)

    def consumer():
        for _ in range(2000):
            yield get()

    env.process(producer())
    env.process(consumer())
    env.process(consumer())


def _wl_container_flow(env: Environment) -> None:
    """Container token flow: blocked getters drained by putters."""
    tank = Container(env, capacity=8.0, init=0.0)
    put = tank.put
    get = tank.get
    timeout = env.timeout

    def putter():
        for _ in range(1500):
            yield put(2.0)
            yield timeout(1.0)

    def getter():
        for _ in range(1500):
            yield get(1.0)
            yield timeout(1.0)

    env.process(putter())
    env.process(getter())
    env.process(getter())


WORKLOADS: tuple[tuple[str, Callable[[Environment], None]], ...] = (
    ("callback-chain", _wl_callback_chain),
    ("succeed-chain", _wl_succeed_chain),
    ("timeout-chain", _wl_timeout_chain),
    ("grant-chain", _wl_grant_chain),
    ("store-handoff", _wl_store_handoff),
    ("container-flow", _wl_container_flow),
)


def _drive(make_env: Callable[[], Environment], build) -> int:
    """Build + run one workload to quiescence; return events dispatched."""
    env = make_env()
    build(env)
    env.run()
    return env._counter


def _paired_best_of(build, rounds: int) -> tuple[float, float]:
    """Min-of-N wall times for (reference, optimized), interleaved.

    Alternating the two kernels inside one loop means a quiet scheduling
    window benefits both, and min-of-N discards the slices a busy machine
    steals — the stable estimator for sub-100ms loops.  The GC is paused
    around the timed region so collection pauses land on neither side.
    """
    import gc

    ref_s = opt_s = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            t0 = time.perf_counter()
            _drive(ReferenceEnvironment, build)
            ref_s = min(ref_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            _drive(Environment, build)
            opt_s = min(opt_s, time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return ref_s, opt_s


def _measure_throughput(rounds: int) -> dict:
    workloads = []
    total_events = 0
    ref_total = 0.0
    opt_total = 0.0
    counts_match = True
    for name, build in WORKLOADS:
        ref_events = _drive(ReferenceEnvironment, build)
        opt_events = _drive(Environment, build)
        counts_match &= ref_events == opt_events
        ref_s, opt_s = _paired_best_of(build, rounds)
        workloads.append(
            {
                "name": name,
                "events": opt_events,
                "reference_events": ref_events,
                "reference_s": ref_s,
                "optimized_s": opt_s,
                "speedup": ref_s / opt_s if opt_s > 0 else 0.0,
                "events_per_s": opt_events / opt_s if opt_s > 0 else 0.0,
            }
        )
        total_events += opt_events
        ref_total += ref_s
        opt_total += opt_s
    return {
        "workloads": workloads,
        "total_events": total_events,
        "reference_s": ref_total,
        "optimized_s": opt_total,
        "speedup": ref_total / opt_total if opt_total > 0 else 0.0,
        "events_per_s": total_events / opt_total if opt_total > 0 else 0.0,
        "event_counts_match": counts_match,
    }


# ---------------------------------------------------------------------------
# End-to-end rows: the timed figures re-run across the kernel's A/B axes.
# ---------------------------------------------------------------------------


def _row(report) -> dict:
    """A report as a JSON-normalized row, wall-clock columns dropped."""
    row = asdict(report)
    for field in report.MEASURED_FIELDS:
        row.pop(field, None)
    return json.loads(json.dumps(row))


def _row_configs(n_errors: int) -> dict[str, SimConfig]:
    return {
        # fig10: per-chunk response time with online arrivals — exercises
        # the _worker arrival-skip path.
        "fig10": SimConfig(
            cache_size="2MB", workers=8, respect_arrival_times=True
        ),
        # fig11: batch reconstruction time, serial chain reads included.
        "fig11": SimConfig(cache_size="4MB", workers=4),
        # cluster: the rack-aware scenario — topology transfers, container
        # bandwidth tokens, heartbeats and the p99 histogram all on.
        "cluster": SimConfig(
            cache_size="8MB",
            workers=8,
            topology=TopologySpec(
                racks=3,
                nodes_per_rack=3,
                limplock_node=1,
                limplock_factor=8.0,
                heartbeat_period=0.1,
            ),
            response_quantiles=True,
        ),
    }


def _identity_rows(n_errors: int, seed: int) -> tuple[dict, dict]:
    layout = make_code("tip", 7)
    errors = generate_errors(
        layout, ErrorTraceConfig(n_errors=n_errors, seed=seed)
    )
    rows: dict[str, dict] = {}
    checks = {
        "rows_pooling_invariant": True,
        "rows_sanitize_invariant": True,
        "rows_obs_invariant": True,
    }
    for name, config in _row_configs(n_errors).items():
        base = _row(run_reconstruction(layout, errors, config))
        rows[name] = base
        unpooled = _row(
            run_reconstruction(
                layout, errors, replace(config, kernel_pooling=False)
            )
        )
        checks["rows_pooling_invariant"] &= unpooled == base
        sanitized = _row(
            run_reconstruction(layout, errors, replace(config, sanitize=True))
        )
        checks["rows_sanitize_invariant"] &= sanitized == base
        _obs.enable(fresh=True)
        try:
            observed = _row(run_reconstruction(layout, errors, config))
        finally:
            _obs.disable()
        checks["rows_obs_invariant"] &= observed == base
    return rows, checks


def run_kernel_bench(
    rounds: int = 3, n_errors: int | None = None, seed: int | None = None
) -> dict:
    """Measure throughput + row identity; return the payload."""
    from .experiments import QUICK

    n_errors = 12 if n_errors is None else n_errors
    seed = QUICK.seed if seed is None else seed
    throughput = _measure_throughput(rounds)
    rows, checks = _identity_rows(n_errors, seed)
    checks["event_counts_match"] = throughput["event_counts_match"]
    checks["speedup_at_least_floor"] = throughput["speedup"] >= SPEEDUP_FLOOR
    return {
        "schema": 1,
        "kind": "kernel",
        "git_rev": _git_rev(),
        "rounds": rounds,
        "n_errors": n_errors,
        "seed": seed,
        "speedup_floor": SPEEDUP_FLOOR,
        "throughput": throughput,
        "rows": rows,
        "checks": checks,
        "aggregate": {
            "speedup": throughput["speedup"],
            "events_per_s": throughput["events_per_s"],
        },
    }


def compare_to_baseline(
    current: dict, baseline: dict, tolerance: float = 0.10
) -> tuple[bool, str]:
    """CI gate: invariants hold, rows bit-exact, speedup not regressed.

    The timed rows carry only virtual-time quantities, so like the
    cluster gate there is no row tolerance: any drift is a determinism
    or behaviour regression.  The speedup axis is a wall-clock *ratio*
    (optimized vs reference on the same machine), so it transfers across
    machines — but a shared CI runner still jitters it by a few percent.
    The absolute :data:`SPEEDUP_FLOOR` is therefore enforced on the
    *committed baseline* (``--out`` refuses to demonstrate less), while
    the fresh run is held to ``tolerance`` of that baseline: the >10%
    band is what absorbs runner noise, so re-imposing the raw floor on
    every re-measurement would just double-count it.
    """
    problems = [
        f"invariant {name} does not hold"
        for name, ok in current["checks"].items()
        # speedup_at_least_floor is the baseline's property (see above);
        # every determinism/identity invariant must hold in the fresh run.
        if not ok and name != "speedup_at_least_floor"
    ]
    if not baseline["checks"].get("speedup_at_least_floor", False):
        problems.append(
            "baseline does not demonstrate the "
            f"{baseline.get('speedup_floor', SPEEDUP_FLOOR)}x speedup floor"
        )
    base_rows = dict(baseline["rows"])
    for name, row in current["rows"].items():
        expected = base_rows.pop(name, None)
        if expected is None:
            problems.append(f"row {name} missing from the baseline")
            continue
        diff = [
            field
            for field in expected
            if field in row and row[field] != expected[field]
        ]
        if diff:
            problems.append(f"row {name} diverged on {', '.join(diff)}")
    for name in base_rows:
        problems.append(f"baseline row {name} missing from the current run")
    current_speedup = current["aggregate"]["speedup"]
    baseline_speedup = baseline["aggregate"]["speedup"]
    floor = baseline_speedup * (1.0 - tolerance)
    if current_speedup < floor:
        problems.append(
            f"kernel speedup {current_speedup:.2f}x fell below "
            f"{floor:.2f}x (baseline {baseline_speedup:.2f}x - {tolerance:.0%})"
        )
    if problems:
        return False, "; ".join(problems)
    return True, (
        f"{len(current['rows'])} timed rows bit-identical; kernel dispatch "
        f"{current_speedup:.2f}x the stepwise reference "
        f"({current['aggregate']['events_per_s']:,.0f} events/s)"
    )


def _format_summary(payload: dict) -> str:
    lines = [
        f"{'workload':>16} {'events':>8} {'ref(ms)':>9} {'opt(ms)':>9} "
        f"{'speedup':>8} {'events/s':>12}"
    ]
    for w in payload["throughput"]["workloads"]:
        lines.append(
            f"{w['name']:>16} {w['events']:>8} {w['reference_s'] * 1e3:>9.2f} "
            f"{w['optimized_s'] * 1e3:>9.2f} {w['speedup']:>8.2f} "
            f"{w['events_per_s']:>12,.0f}"
        )
    agg = payload["aggregate"]
    lines.append(
        f"{'TOTAL':>16} {payload['throughput']['total_events']:>8} "
        f"{payload['throughput']['reference_s'] * 1e3:>9.2f} "
        f"{payload['throughput']['optimized_s'] * 1e3:>9.2f} "
        f"{agg['speedup']:>8.2f} {agg['events_per_s']:>12,.0f}"
    )
    for name, row in payload["rows"].items():
        lines.append(
            f"row {name}: recon={row['reconstruction_time']:.4f}s "
            f"avg_resp={row['avg_response_time']:.6f}s "
            f"requests={row['total_requests']}"
        )
    for name, ok in payload["checks"].items():
        lines.append(f"check {name}: {'ok' if ok else 'FAILED'}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-kernel-bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", help="write the BENCH_kernel.json payload here")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed BENCH_kernel.json; exit 1 on "
        "any invariant failure, row drift, or speedup regression",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--errors", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative speedup regression vs the baseline",
    )
    args = parser.parse_args(argv)

    payload = run_kernel_bench(
        rounds=args.rounds, n_errors=args.errors, seed=args.seed
    )
    emit(_format_summary(payload))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        emit(f"wrote {out}")
    if args.check:
        baseline = json.loads(Path(args.check).read_text(encoding="utf-8"))
        ok, message = compare_to_baseline(
            payload, baseline, tolerance=args.tolerance
        )
        emit(("PASS: " if ok else "FAIL: ") + message)
        return 0 if ok else 1
    if args.out and not all(payload["checks"].values()):
        # A new baseline must demonstrate every invariant *and* the
        # absolute speedup floor; the file is still written so the
        # failing measurement can be inspected.
        emit("FAIL: payload does not satisfy its own checks")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
