"""The cluster-recovery bench: the rack-aware scenario as a CI gate.

Runs the quick-scale ``cluster`` grid — EC decode (FBF/LRU/ARC) vs
replication on a 3-rack cluster, healthy and with a limplocked node —
plus the degenerate-topology equivalence check, and emits
``BENCH_cluster.json``.  Every number in the payload is *virtual* time
or traffic (no wall clocks), so the committed baseline is
machine-independent and CI compares rows **bit-exactly**:

* the one-node topology must reproduce the golden single-controller
  rows identically (the refactor's safety contract, DESIGN §15);
* EC recovery must move more cross-rack bytes than replication (the
  Rashmi et al. traffic asymmetry the scenario exists to show);
* the measured bottleneck must be a network link, not a disk;
* the nic-counter detector must flag exactly the limplocked node;
* every row must equal the committed baseline's row.

Run directly: ``python -m repro.bench.cluster_bench --out BENCH_cluster.json``
or ``--check benchmarks/BENCH_cluster.json`` for the CI gate.
"""

from __future__ import annotations

import json
from dataclasses import asdict, replace
from pathlib import Path
from typing import Sequence

from ..codes import make_code
from ..obs import emit
from ..sim import SimConfig, TopologySpec, run_reconstruction
from ..sim.cluster import ClusterSpec, run_cluster_recovery
from ..workloads import ErrorTraceConfig, generate_errors
from .engine import _git_rev
from .experiments import QUICK

__all__ = ["run_cluster_bench", "compare_to_baseline"]

#: The scenario axis: (redundancy, policy) per cluster state.
SCENARIOS = (("ec", "fbf"), ("ec", "lru"), ("ec", "arc"), ("rep", "rep"))


def _degenerate_identical(n_errors: int, seed: int) -> bool:
    """One-node topology == golden single-controller rows, bit for bit."""
    layout = make_code("tip", 7)
    errors = generate_errors(
        layout, ErrorTraceConfig(n_errors=n_errors, seed=seed)
    )
    config = SimConfig(workers=8)
    base = run_reconstruction(layout, errors, config)
    topo = run_reconstruction(
        layout, errors, replace(config, topology=TopologySpec())
    )
    return (base.simulated_dict(exclude=("cluster",))
            == topo.simulated_dict(exclude=("cluster",)))


def run_cluster_bench(n_errors: int | None = None, seed: int | None = None) -> dict:
    """Run the scenario grid + invariant checks; return the payload."""
    n_errors = QUICK.n_errors if n_errors is None else n_errors
    seed = QUICK.seed if seed is None else seed
    rows = []
    for limplock in (False, True):
        for redundancy, policy in SCENARIOS:
            spec = ClusterSpec(
                redundancy=redundancy,
                policy=policy if redundancy == "ec" else "fbf",
                n_errors=n_errors,
                seed=seed,
                workers=min(QUICK.workers, 8),
                limplock=limplock,
            )
            report = run_cluster_recovery(spec)
            row = asdict(report)
            row["cross_rack_mb"] = report.cross_rack_mb
            row["limplock_suspects"] = list(report.limplock_suspects)
            rows.append(row)

    def _rows(redundancy, limplock):
        return [r for r in rows
                if r["redundancy"] == redundancy and r["limplock"] == limplock]

    ec_cross = min(r["cross_rack_bytes"] for r in _rows("ec", False))
    rep_cross = max(r["cross_rack_bytes"] for r in _rows("rep", False))
    checks = {
        "degenerate_identical": _degenerate_identical(n_errors, seed),
        # the traffic asymmetry: decode reads k survivors where
        # replication reads one replica
        "ec_exceeds_rep_cross_rack": ec_cross > rep_cross,
        "bottleneck_is_network": all(
            "nic" in r["bottleneck"] or "uplink" in r["bottleneck"]
            for r in rows
        ),
        "limplock_detected": all(
            r["limplock_suspects"] == [1] if r["limplock"]
            else r["limplock_suspects"] == []
            for r in rows
        ),
    }
    return {
        "schema": 1,
        "kind": "cluster-recovery",
        "git_rev": _git_rev(),
        "scale": "quick",
        "n_errors": n_errors,
        "seed": seed,
        "rows": rows,
        "checks": checks,
        "aggregate": {
            "ec_min_cross_rack_bytes": ec_cross,
            "rep_max_cross_rack_bytes": rep_cross,
            "traffic_ratio": ec_cross / rep_cross if rep_cross else None,
        },
    }


def compare_to_baseline(current: dict, baseline: dict) -> tuple[bool, str]:
    """CI gate: all invariants hold and every row matches bit-exactly.

    The payload carries only virtual-time quantities, so unlike the
    replay bench there is no tolerance: any row drift is a determinism
    or behaviour regression.
    """
    problems = [
        f"invariant {name} does not hold"
        for name, ok in current["checks"].items() if not ok
    ]
    base_rows = {
        (r["redundancy"], r["policy"], r["limplock"]): r
        for r in baseline["rows"]
    }
    for row in current["rows"]:
        key = (row["redundancy"], row["policy"], row["limplock"])
        expected = base_rows.pop(key, None)
        if expected is None:
            problems.append(f"row {key} missing from the baseline")
            continue
        diff = [
            field for field in expected
            if field in row and row[field] != expected[field]
        ]
        if diff:
            problems.append(f"row {key} diverged on {', '.join(diff)}")
    for key in base_rows:
        problems.append(f"baseline row {key} missing from the current run")
    if problems:
        return False, "; ".join(problems)
    ratio = current["aggregate"]["traffic_ratio"]
    return True, (
        f"{len(current['rows'])} rows bit-identical; EC moves "
        f"{ratio:.2f}x replication's cross-rack bytes"
    )


def _format_summary(payload: dict) -> str:
    lines = [
        f"{'state':>8} {'mode':>5} {'policy':>7} {'hit':>8} "
        f"{'xrack(MB)':>10} {'recover(s)':>11} {'p99(s)':>8} {'bottleneck':>13}"
    ]
    for r in payload["rows"]:
        state = "limplock" if r["limplock"] else "healthy"
        lines.append(
            f"{state:>8} {r['redundancy']:>5} {r['policy']:>7} "
            f"{r['hit_ratio']:>8.4f} {r['cross_rack_mb']:>10.1f} "
            f"{r['recovery_time']:>11.3f} {r['p99_response_time']:>8.4f} "
            f"{r['bottleneck']:>13}"
        )
    for name, ok in payload["checks"].items():
        lines.append(f"check {name}: {'ok' if ok else 'FAILED'}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-cluster-bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", help="write the BENCH_cluster.json payload here")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed BENCH_cluster.json; exit 1 on "
        "any invariant failure or row drift",
    )
    parser.add_argument("--errors", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    payload = run_cluster_bench(n_errors=args.errors, seed=args.seed)
    emit(_format_summary(payload))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        emit(f"wrote {out}")
    if args.check:
        baseline = json.loads(Path(args.check).read_text(encoding="utf-8"))
        ok, message = compare_to_baseline(payload, baseline)
        emit(("PASS: " if ok else "FAIL: ") + message)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
