"""Parallel sweep engine: fan a figure/table grid out across processes.

The paper's evaluation is an embarrassingly parallel grid — every
``(code, p, policy, cache size)`` cell is an independent deterministic
simulation — so the engine decomposes a sweep into flat, hashable
:class:`GridPoint` tasks, executes them on a ``ProcessPoolExecutor`` and
reassembles :class:`~repro.bench.experiments.SweepPoint` rows in the
original (canonical) grid order.  Because every simulation is a pure
function of its ``GridPoint``, the parallel result is identical to the
serial one, row for row.

Three layers keep repeated runs cheap:

* **per-group prepare** — backend construction (via the unified
  :mod:`repro.engine` registry), failure-trace generation and the
  :class:`~repro.engine.tracesim.PlanCache` are shared by every point of
  a ``(code, p, n_errors, seed[, scheme])`` group.  Each worker process
  memoises them, so a group costs one setup per process instead of one
  per point (the serial path shares a single memo, matching the old
  nested-loop behaviour exactly);
* **persistent result cache** — each computed row is stored under a
  SHA-256 key of the point's full parameter vector plus a code-version
  salt (:data:`ENGINE_CACHE_VERSION`); re-running a sweep only computes
  points whose parameters (or the salt) changed;
* **single-pass group dispatch** — hit-ratio cells (``trace`` and
  ``demotion`` kinds) sharing one ``(code, p, scheme, trace)`` group are
  replayed together through :func:`~repro.engine.stream.
  simulate_grid_pass`: the request stream is decoded and interned once
  and every (policy x capacity) cell steps over it, bit-for-bit equal to
  the per-point rows (``EngineConfig.batch=False`` — the CLI's
  ``--no-batch`` — restores the per-point golden path);
* **process-pool fan-out** — ``workers="auto"`` uses ``os.cpu_count()``,
  ``workers=0`` is an in-process serial fallback for debugging.  The
  worker count only schedules work; it never parameterises a simulation
  (simlint DET004 enforces this repo-wide).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from ..obs import runtime as _obs

__all__ = [
    "ENGINE_CACHE_VERSION",
    "GridPoint",
    "EngineConfig",
    "EnginePool",
    "PointTiming",
    "EngineResult",
    "ResultCache",
    "default_cache_dir",
    "run_grid",
]

#: Version salt mixed into every cache key.  Bump it whenever a change to
#: the simulator, the policies, the codes, or the workload generator can
#: alter any SweepPoint value — stale rows must never be served.
ENGINE_CACHE_VERSION = "2"  # v2: GridPoint grew cluster fields (redundancy/limplock)

_POINT_KINDS = ("trace", "des", "demotion", "cluster")


@dataclass(frozen=True)
class GridPoint:
    """One grid cell, described declaratively so it ships to any process.

    A point carries *every* input its simulation depends on; nothing is
    closed over.  That makes it hashable (deduplication), picklable
    (process fan-out) and content-addressable (the persistent cache).
    """

    kind: str  #: "trace" (fig8/9 replay), "des" (event sim), "demotion"
    experiment: str
    code: str  #: registry name, e.g. "tip" (SweepPoint carries layout.name)
    p: int
    policy: str  #: policy registry name, or the ablation label
    cache_mb: float
    scheme_mode: str = "fbf"
    n_errors: int = 48
    seed: int = 42
    sor_workers: int = 32  #: the paper's SOR worker count (simulated!)
    chunk_size: str = "32KB"
    demote_on_hit: bool | None = None  #: only for kind="demotion"
    redundancy: str | None = None  #: "ec"/"rep", only for kind="cluster"
    limplock: bool = False  #: fail-slow node injection, kind="cluster"

    def __post_init__(self) -> None:
        if self.kind not in _POINT_KINDS:
            raise ValueError(f"kind must be one of {_POINT_KINDS}, got {self.kind!r}")
        if self.kind == "demotion" and self.demote_on_hit is None:
            raise ValueError("demotion points require demote_on_hit")
        if self.kind == "cluster" and self.redundancy not in ("ec", "rep"):
            raise ValueError("cluster points require redundancy 'ec' or 'rep'")

    def cache_key(self, salt: str = ENGINE_CACHE_VERSION) -> str:
        """Content address: SHA-256 over the canonical parameter vector."""
        payload = json.dumps(
            {"v": salt, **asdict(self)}, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class EngineConfig:
    """How to execute a grid: fan-out width and result-cache location.

    ``workers=0`` runs in-process (serial debugging fallback); ``"auto"``
    resolves to ``os.cpu_count()``.  ``cache_dir=None`` disables the
    persistent cache.  ``batch=False`` (the CLI's ``--no-batch``)
    disables single-pass group dispatch and computes every cell through
    the per-point golden path.
    """

    workers: int | str = 0
    cache_dir: str | Path | None = None
    #: multiprocessing start method ("spawn"/"fork"/"forkserver");
    #: None = platform default.  The worker is a top-level function, so
    #: every method is safe.
    start_method: str | None = None
    #: replay hit-ratio cells of one (code, p, scheme, trace) group in a
    #: single interned-stream pass (bit-for-bit equal to per-point rows).
    batch: bool = True
    #: grid-pass replay backend for batched hit-ratio groups: "python"
    #: (golden per-request loop) or "numpy" (vector fleet, bit-identical
    #: rows; the CLI's --replay-backend).
    replay_backend: str = "python"
    #: plain-LRU stack-distance profile flavor: "exact" (Fenwick) or
    #: "sampled" (SHARDS at shards_rate — approximate rows, bounded
    #: error, O(sample) memory; cached under a distinct salt).
    stackdist: str = "exact"
    shards_rate: float = 0.01

    def __post_init__(self) -> None:
        if isinstance(self.workers, str):
            if self.workers != "auto":
                raise ValueError(f"workers must be an int >= 0 or 'auto', got {self.workers!r}")
        elif self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.replay_backend not in ("python", "numpy"):
            raise ValueError(
                "replay_backend must be 'python' or 'numpy', "
                f"got {self.replay_backend!r}"
            )
        if self.stackdist not in ("exact", "sampled"):
            raise ValueError(
                f"stackdist must be 'exact' or 'sampled', got {self.stackdist!r}"
            )
        if not 0.0 < self.shards_rate <= 1.0:
            raise ValueError(
                f"shards_rate must be in (0, 1], got {self.shards_rate}"
            )

    def replay_salt(self, base: str = ENGINE_CACHE_VERSION) -> str:
        """Result-cache salt: sampled rows never share exact rows' keys.

        The numpy backend is bit-identical, so it keeps the base salt;
        SHARDS estimates are rate-dependent approximations and get their
        own namespace.
        """
        if self.stackdist == "sampled":
            return f"{base}+shards:{self.shards_rate!r}"
        return base

    def resolved_workers(self) -> int:
        if self.workers == "auto":
            return os.cpu_count() or 1
        return int(self.workers)


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/repro-fbf`` (or ``~/.cache/repro-fbf``)."""
    root = os.environ.get("XDG_CACHE_HOME")
    base = Path(root) if root else Path.home() / ".cache"
    return base / "repro-fbf"


class EnginePool:
    """A reusable process-pool handle shared across :func:`run_grid` calls.

    ``run_grid`` normally builds a fresh ``ProcessPoolExecutor`` per
    invocation — fine for one-shot sweeps, wasteful for a long-lived
    caller (the serve layer) that replays a grid every few seconds:
    process spawn plus per-process memo warm-up would dominate.  An
    ``EnginePool`` keeps the executor (and therefore the workers' warm
    ``_BACKENDS``/``_PLANS``/``_STREAMS`` memos) alive across calls::

        with EnginePool(workers=4) as pool:
            for window in windows:
                run_grid(points, engine, pool=pool)

    The executor is created lazily on first use and torn down by
    :meth:`close` (or the context manager).  ``workers`` follows the
    :class:`EngineConfig` vocabulary (``"auto"`` = ``os.cpu_count()``);
    a pool resolved to zero workers is a valid no-op handle — callers
    fall back to their in-process path.
    """

    def __init__(
        self, workers: int | str = "auto", start_method: str | None = None
    ):
        if isinstance(workers, str):
            if workers != "auto":
                raise ValueError(
                    f"workers must be an int >= 0 or 'auto', got {workers!r}"
                )
        elif workers < 0:
            raise ValueError(
                f"workers must be an int >= 0 or 'auto', got {workers!r}"
            )
        self.workers = workers
        self.start_method = start_method
        self._executor: ProcessPoolExecutor | None = None

    def resolved_workers(self) -> int:
        if self.workers == "auto":
            return os.cpu_count() or 1
        return int(self.workers)

    @property
    def active(self) -> bool:
        """Has an executor been spun up (and not yet closed)?"""
        return self._executor is not None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, creating it on first use."""
        n = self.resolved_workers()
        if n < 1:
            raise RuntimeError("EnginePool resolved to 0 workers; use the "
                               "in-process path instead")
        if self._executor is None:
            import multiprocessing

            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method
                else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=n, mp_context=context
            )
        return self._executor

    def map(self, fn, iterable, chunksize: int = 1):
        """``executor.map`` with the pool's lifetime semantics."""
        return self.executor().map(fn, iterable, chunksize=chunksize)

    def close(self) -> None:
        """Shut the executor down (idempotent); the handle stays reusable."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ResultCache:
    """Content-addressed store of computed rows: one JSON file per point.

    Files live at ``<dir>/<key[:2]>/<key>.json`` (sharded so directory
    listings stay cheap at FULL scale).  Writes are atomic (temp file +
    ``os.replace``), so a crashed or parallel run never leaves a torn
    entry.
    """

    def __init__(self, directory: str | Path, salt: str = ENGINE_CACHE_VERSION):
        self.directory = Path(directory)
        self.salt = salt

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, point: GridPoint) -> "SweepPoint | None":
        from .experiments import SweepPoint

        path = self._path(point.cache_key(self.salt))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        row = payload.get("row")
        if not isinstance(row, dict):
            return None
        try:
            return SweepPoint(**row)
        except TypeError:  # schema drift without a salt bump: treat as miss
            return None

    def put(self, point: GridPoint, row: "SweepPoint") -> None:
        key = point.cache_key(self.salt)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "point": asdict(point), "row": asdict(row)}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)


@dataclass(frozen=True)
class PointTiming:
    """Per-point provenance for BENCH reports."""

    key: str
    experiment: str
    code: str
    p: int
    policy: str
    cache_mb: float
    seconds: float
    cached: bool


@dataclass
class EngineResult:
    """Rows in canonical grid order plus execution statistics.

    ``cache_hits``/``cache_misses`` count the persistent *result* cache;
    ``plan_cache_hits``/``plan_cache_misses`` aggregate the in-memory
    :class:`~repro.engine.tracesim.PlanCache` memo deltas reported back
    by every compute task (summed across pool workers).  DES-kind points
    build plans through the controller's private memo, so they contribute
    zero here by construction.
    """

    points: "list[SweepPoint]"
    wall_s: float
    workers: int
    cache_hits: int
    cache_misses: int
    timings: list[PointTiming] = field(default_factory=list)
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def compute_s(self) -> float:
        """Serial-equivalent compute time (sum of per-point times)."""
        return sum(t.seconds for t in self.timings)

    @property
    def speedup_estimate(self) -> float:
        """compute_s / wall_s — effective parallelism incl. cache effect."""
        return self.compute_s / self.wall_s if self.wall_s > 0 else 0.0


# -- worker side --------------------------------------------------------------
#
# Module-level memos keyed by value tuples: in a pool worker they amortise
# the per-(code, p) setup across every point that process executes; in
# the serial fallback they reproduce the old nested-loop sharing (one
# backend/event-trace/PlanCache per sweep group).  All cached objects are
# deterministic functions of their keys, so sharing never changes results.

_BACKENDS: dict = {}
_EVENTS: dict = {}
_PLANS: dict = {}
_STREAMS: dict = {}


def _reset_worker_state() -> None:
    """Drop the per-process memos (test isolation / leak control)."""
    _BACKENDS.clear()
    _EVENTS.clear()
    _PLANS.clear()
    _STREAMS.clear()


def _backend_for(code: str, p: int, scheme_mode: str):
    from ..engine.registry import make_backend

    key = (code, p, scheme_mode)
    backend = _BACKENDS.get(key)
    if backend is None:
        backend = _BACKENDS[key] = make_backend(code, p, scheme_mode=scheme_mode)
    return backend


def _events_for(code: str, p: int, n_errors: int, seed: int):
    # Failure traces depend only on the code, never on the scheme mode,
    # so the memo key omits it (any scheme's backend generates them).
    key = (code, p, n_errors, seed)
    events = _EVENTS.get(key)
    if events is None:
        events = _EVENTS[key] = _backend_for(code, p, "fbf").generate_events(
            n_errors, seed
        )
    return events


def _plans_for(code: str, p: int, scheme_mode: str):
    from ..engine.tracesim import PlanCache

    key = (code, p, scheme_mode)
    plans = _PLANS.get(key)
    if plans is None:
        plans = _PLANS[key] = PlanCache(_backend_for(code, p, scheme_mode))
    return plans


def _stream_for(code: str, p: int, scheme_mode: str, n_errors: int, seed: int):
    from ..engine.stream import intern_stream

    key = (code, p, scheme_mode, n_errors, seed)
    stream = _STREAMS.get(key)
    if stream is None:
        stream = _STREAMS[key] = intern_stream(
            _backend_for(code, p, scheme_mode),
            _events_for(code, p, n_errors, seed),
            plan_cache=_plans_for(code, p, scheme_mode),
        )
    return stream


def _blocks_for(cache_mb: float, chunk_size: str) -> int:
    from ..utils import parse_size

    return int(cache_mb * 1024 * 1024) // parse_size(chunk_size)


def compute_point(point: GridPoint) -> "SweepPoint":
    """Run one grid cell; pure function of ``point`` (spawn-safe)."""
    from .experiments import SweepPoint

    backend = _backend_for(point.code, point.p, point.scheme_mode)
    events = _events_for(point.code, point.p, point.n_errors, point.seed)

    if point.kind == "trace":
        from ..engine.tracesim import simulate_trace

        res = simulate_trace(
            backend,
            events,
            policy=point.policy,
            capacity_blocks=_blocks_for(point.cache_mb, point.chunk_size),
            workers=point.sor_workers,
            plan_cache=_plans_for(point.code, point.p, point.scheme_mode),
        )
        return SweepPoint(
            experiment=point.experiment,
            code=res.code,
            p=point.p,
            policy=point.policy,
            cache_mb=point.cache_mb,
            hit_ratio=res.hit_ratio,
            disk_reads=res.disk_reads,
            scheme_mode=point.scheme_mode,
        )

    if point.kind == "demotion":
        from ..core.fbf_cache import FBFCache
        from ..engine.tracesim import simulate_trace

        demote = bool(point.demote_on_hit)
        res = simulate_trace(
            backend,
            events,
            capacity_blocks=_blocks_for(point.cache_mb, point.chunk_size),
            workers=point.sor_workers,
            plan_cache=_plans_for(point.code, point.p, point.scheme_mode),
            policy_factory=lambda cap, d=demote: FBFCache(cap, demote_on_hit=d),
        )
        return SweepPoint(
            experiment=point.experiment,
            code=res.code,
            p=point.p,
            policy=point.policy,
            cache_mb=point.cache_mb,
            hit_ratio=res.hit_ratio,
            disk_reads=res.disk_reads,
        )

    if point.kind == "cluster":
        from ..sim.cluster import ClusterSpec, run_cluster_recovery

        rep = run_cluster_recovery(
            ClusterSpec(
                redundancy=point.redundancy or "ec",
                code=point.code,
                p=point.p,
                policy=point.policy,
                cache_size=int(point.cache_mb * 1024 * 1024),
                scheme_mode=point.scheme_mode,
                n_errors=point.n_errors,
                seed=point.seed,
                workers=point.sor_workers,
                chunk_size=point.chunk_size,
                limplock=point.limplock,
            )
        )
        return SweepPoint(
            experiment=point.experiment,
            code=rep.code,
            p=point.p,
            policy=point.policy,
            cache_mb=point.cache_mb,
            hit_ratio=rep.hit_ratio,
            disk_reads=rep.disk_reads,
            avg_response_time=rep.avg_response_time,
            reconstruction_time=rep.recovery_time,
            scheme_mode=point.scheme_mode,
            redundancy=rep.redundancy,
            limplock=rep.limplock,
            cross_rack_mb=rep.cross_rack_mb,
            p99_response_time=rep.p99_response_time,
        )

    # kind == "des": the full event-driven simulation (timing metrics).
    from ..engine.timed import run_timed_replay
    from ..sim.reconstruction import SimConfig

    config = SimConfig(
        policy=point.policy,
        cache_size=int(point.cache_mb * 1024 * 1024),
        chunk_size=point.chunk_size,
        scheme_mode=point.scheme_mode,
        workers=point.sor_workers,
    )
    rep = run_timed_replay(backend, events, config)
    return SweepPoint(
        experiment=point.experiment,
        code=rep.code,
        p=point.p,
        policy=point.policy,
        cache_mb=point.cache_mb,
        hit_ratio=rep.hit_ratio,
        disk_reads=rep.disk_reads,
        avg_response_time=rep.avg_response_time,
        reconstruction_time=rep.reconstruction_time,
        overhead_ms=rep.overhead_mean_s * 1000.0,
        overhead_percent=rep.overhead_percent,
        scheme_mode=point.scheme_mode,
    )


def _timed_point(point: GridPoint) -> "tuple[SweepPoint, float]":
    """Pool entry point: compute one cell and report its compute time."""
    t0 = time.perf_counter()
    row = compute_point(point)
    return row, time.perf_counter() - t0


def _group_key(point: GridPoint) -> tuple:
    """Points with equal keys replay the same decoded request stream."""
    return (point.code, point.p, point.scheme_mode, point.n_errors, point.seed)


def compute_group(
    points: "Sequence[GridPoint]",
    replay_backend: str = "python",
    stackdist: str = "exact",
    shards_rate: float = 0.01,
) -> "list[SweepPoint]":
    """Run a same-stream group of hit-ratio cells in one interned pass.

    Every point must be ``kind="trace"`` or ``kind="demotion"`` and share
    :func:`_group_key`.  Rows are returned in ``points`` order and are
    bit-for-bit identical to :func:`compute_point` on each cell — the
    equivalence the grid-pass property tests pin down.
    """
    from ..engine.stream import ReplayConfig, simulate_grid_pass
    from .experiments import SweepPoint

    first = points[0]
    configs = []
    for point in points:
        capacity = _blocks_for(point.cache_mb, point.chunk_size)
        if point.kind == "demotion":
            from ..core.fbf_cache import FBFCache

            demote = bool(point.demote_on_hit)
            configs.append(
                ReplayConfig(
                    capacity_blocks=capacity,
                    workers=point.sor_workers,
                    policy_factory=lambda cap, d=demote: FBFCache(
                        cap, demote_on_hit=d
                    ),
                )
            )
        else:
            configs.append(
                ReplayConfig(
                    policy=point.policy,
                    capacity_blocks=capacity,
                    workers=point.sor_workers,
                )
            )
    results = simulate_grid_pass(
        _backend_for(first.code, first.p, first.scheme_mode),
        _events_for(first.code, first.p, first.n_errors, first.seed),
        configs,
        plan_cache=_plans_for(first.code, first.p, first.scheme_mode),
        stream=_stream_for(
            first.code, first.p, first.scheme_mode, first.n_errors, first.seed
        ),
        replay_backend=replay_backend,
        stackdist=stackdist,
        shards_rate=shards_rate,
    )
    rows = []
    for point, res in zip(points, results):
        if point.kind == "demotion":
            rows.append(
                SweepPoint(
                    experiment=point.experiment,
                    code=res.code,
                    p=point.p,
                    policy=point.policy,
                    cache_mb=point.cache_mb,
                    hit_ratio=res.hit_ratio,
                    disk_reads=res.disk_reads,
                )
            )
        else:
            rows.append(
                SweepPoint(
                    experiment=point.experiment,
                    code=res.code,
                    p=point.p,
                    policy=point.policy,
                    cache_mb=point.cache_mb,
                    hit_ratio=res.hit_ratio,
                    disk_reads=res.disk_reads,
                    scheme_mode=point.scheme_mode,
                )
            )
    return rows


def _plan_totals() -> tuple[int, int]:
    """Summed ``(hits, misses)`` over this process's PlanCache memos."""
    hits = misses = 0
    for plans in _PLANS.values():
        h, m = plans.counts()
        hits += h
        misses += m
    return hits, misses


def _timed_task(
    points: "tuple[GridPoint, ...]",
    replay: "tuple[str, str, float]" = ("python", "exact", 0.01),
) -> "tuple[list[tuple[SweepPoint, float]], tuple[int, int]]":
    """Pool entry point for a task: a same-stream group or a singleton.

    Singletons go through the per-point golden path; larger groups take
    the single-pass replay.  Group compute time is split evenly across
    the group's cells so per-point timings stay additive.  The second
    element is this task's plan-cache ``(hits, misses)`` delta — additive
    across tasks and across pool workers, so the driver can surface the
    memo's effectiveness without sharing state between processes.
    """
    before_hits, before_misses = _plan_totals()
    if len(points) == 1:
        results = [_timed_point(points[0])]
    else:
        t0 = time.perf_counter()
        rows = compute_group(points, *replay)
        per_point = (time.perf_counter() - t0) / len(points)
        results = [(row, per_point) for row in rows]
    after_hits, after_misses = _plan_totals()
    return results, (after_hits - before_hits, after_misses - before_misses)


# -- driver side --------------------------------------------------------------

def run_grid(
    points: Sequence[GridPoint],
    engine: EngineConfig | None = None,
    on_progress: Callable[[int, int], None] | None = None,
    pool: EnginePool | None = None,
) -> EngineResult:
    """Execute ``points`` and return rows in the same (canonical) order.

    Output is independent of ``engine``: the worker count and the cache
    only affect *when and where* cells are computed, never their values.
    ``on_progress(done, total)`` is called after every completed point.
    ``pool`` reuses a live :class:`EnginePool` executor instead of
    spawning one per call (its worker count overrides ``engine.workers``);
    the pool outlives this call — the caller closes it.
    """
    engine = engine or EngineConfig()
    obs_on = _obs.ENABLED
    if obs_on:
        grid_span = _obs.span("bench.run_grid", {"points": len(points)})
        grid_span.__enter__()
    t_start = time.perf_counter()
    total = len(points)
    cache = (
        ResultCache(engine.cache_dir, salt=engine.replay_salt())
        if engine.cache_dir is not None
        else None
    )
    replay = (engine.replay_backend, engine.stackdist, engine.shards_rate)

    rows: list = [None] * total
    timings: list[PointTiming | None] = [None] * total
    done = 0

    def record(i: int, row, seconds: float, cached: bool) -> None:
        nonlocal done
        rows[i] = row
        timings[i] = PointTiming(
            key=points[i].cache_key(),
            experiment=points[i].experiment,
            code=points[i].code,
            p=points[i].p,
            policy=points[i].policy,
            cache_mb=points[i].cache_mb,
            seconds=seconds,
            cached=cached,
        )
        done += 1
        if on_progress is not None:
            on_progress(done, total)

    misses: list[int] = []
    if cache is not None:
        for i, point in enumerate(points):
            row = cache.get(point)
            if row is None:
                misses.append(i)
            else:
                record(i, row, 0.0, cached=True)
    else:
        misses = list(range(total))
    hits = total - len(misses)

    # A task is a list of point indices computed together: hit-ratio
    # cells sharing one decoded stream become a single-pass group when
    # batching is on; everything else (and every cell with batch=False)
    # is a singleton on the per-point golden path.
    tasks: list[list[int]] = []
    if engine.batch:
        groups: dict[tuple, list[int]] = {}
        for i in misses:
            point = points[i]
            if point.kind in ("trace", "demotion"):
                group = groups.get(_group_key(point))
                if group is None:
                    groups[_group_key(point)] = group = []
                    tasks.append(group)
                group.append(i)
            else:
                tasks.append([i])
    else:
        tasks = [[i] for i in misses]

    plan_hits = plan_misses = 0

    def record_task(indices: "list[int]", task_result) -> None:
        nonlocal plan_hits, plan_misses
        results, (task_hits, task_misses) = task_result
        plan_hits += task_hits
        plan_misses += task_misses
        for i, (row, seconds) in zip(indices, results):
            if cache is not None:
                cache.put(points[i], row)
            record(i, row, seconds, cached=False)

    n_workers = (
        pool.resolved_workers() if pool is not None else engine.resolved_workers()
    )
    if n_workers == 0 or len(tasks) <= 1:
        for indices in tasks:
            record_task(
                indices,
                _timed_task(tuple(points[i] for i in indices), replay),
            )
    else:
        from functools import partial

        n_workers = min(n_workers, len(tasks))
        chunksize = max(1, len(tasks) // (n_workers * 4))
        todo = [tuple(points[i] for i in indices) for indices in tasks]
        task_fn = partial(_timed_task, replay=replay)
        if pool is not None:
            mapped = pool.map(task_fn, todo, chunksize=chunksize)
            for indices, results in zip(tasks, mapped):
                record_task(indices, results)
        else:
            import multiprocessing

            context = (
                multiprocessing.get_context(engine.start_method)
                if engine.start_method
                else None
            )
            with ProcessPoolExecutor(
                max_workers=n_workers, mp_context=context
            ) as executor:
                for indices, results in zip(
                    tasks,
                    executor.map(task_fn, todo, chunksize=chunksize),
                ):
                    record_task(indices, results)

    resolved = (
        pool.resolved_workers() if pool is not None else engine.resolved_workers()
    )
    result = EngineResult(
        points=rows,
        wall_s=time.perf_counter() - t_start,
        workers=0 if resolved == 0 else n_workers,
        cache_hits=hits,
        cache_misses=len(misses),
        timings=[t for t in timings if t is not None],
        plan_cache_hits=plan_hits,
        plan_cache_misses=plan_misses,
    )
    if obs_on:
        grid_span["result_cache_hits"] = hits
        grid_span.__exit__(None, None, None)
        _obs.counter("bench.grids").inc()
        _obs.counter("bench.points").inc(total)
        _obs.counter("bench.result_cache.hits").inc(hits)
        _obs.counter("bench.result_cache.misses").inc(len(misses))
        _obs.counter("bench.plan_cache.hits").inc(plan_hits)
        _obs.counter("bench.plan_cache.misses").inc(plan_misses)
        point_seconds = _obs.histogram("bench.point_seconds")
        for t in result.timings:
            if not t.cached:
                point_seconds.observe(t.seconds)
        _obs.gauge("bench.workers").set(result.workers)
        if result.wall_s > 0:
            _obs.gauge("bench.utilization").set(
                result.compute_s / (result.wall_s * max(1, result.workers))
            )
    return result


# -- BENCH report -------------------------------------------------------------

def _git_rev() -> str | None:
    """Current commit hash, or None outside a git checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def bench_payload(
    experiment: str,
    scale_name: str,
    result: EngineResult,
    extra: Mapping[str, object] | None = None,
) -> dict:
    """The machine-readable ``BENCH_<experiment>.json`` document."""
    payload: dict = {
        "schema": 1,
        "experiment": experiment,
        "scale": scale_name,
        "engine_version": ENGINE_CACHE_VERSION,
        "git_rev": _git_rev(),
        "wall_s": result.wall_s,
        "compute_s": result.compute_s,
        "speedup_estimate": result.speedup_estimate,
        "n_points": result.n_points,
        "workers": result.workers,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "plan_cache_hits": result.plan_cache_hits,
        "plan_cache_misses": result.plan_cache_misses,
        "per_point": [asdict(t) for t in result.timings],
    }
    if extra:
        payload.update(extra)
    return payload


def write_bench_json(
    path: str | Path,
    experiment: str,
    scale_name: str,
    result: EngineResult,
    extra: Mapping[str, object] | None = None,
) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(bench_payload(experiment, scale_name, result, extra), indent=2)
        + "\n",
        encoding="utf-8",
    )
    return out
