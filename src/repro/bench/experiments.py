"""Experiment runners: one per figure/table of the paper's evaluation.

Each runner returns a list of :class:`SweepPoint` rows; the reporting
module turns them into the paper's tables/series.  Scales are configurable
so the same code serves quick CI benchmarks and full reproductions:

* :data:`QUICK` — minutes on a laptop; coarse cache-size grid.
* :data:`FULL` — the paper's grid (128 SOR workers, fine sweep).

The paper's axes are preserved: cache size in MB with 32 KB chunks, the
four codes, P in {5, 7, 11, 13}, and the policy set {FIFO, LRU, LFU, ARC,
FBF}.

Execution is delegated to :mod:`repro.bench.engine`: every runner first
*describes* its sweep as a flat list of :class:`~repro.bench.engine.
GridPoint` tasks in canonical grid order (``*_grid`` builders, also used
directly by ``repro-fbf bench``), then executes them via
:func:`~repro.bench.engine.run_grid`.  Passing an
:class:`~repro.bench.engine.EngineConfig` fans the grid out across a
process pool and/or reuses the persistent result cache; the default is
the in-process serial path, whose output is identical row for row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Sequence

from .engine import EngineConfig, GridPoint, run_grid
from ..utils import parse_size

__all__ = [
    "Scale",
    "QUICK",
    "FULL",
    "SweepPoint",
    "fig8_hit_ratio",
    "fig9_read_ops",
    "fig10_response_time",
    "fig11_reconstruction_time",
    "table4_overhead",
    "table5_max_improvement",
    "ablation_scheme",
    "ablation_demotion",
    "lrc_hit_ratio",
    "cluster_grid",
    "cluster_recovery",
    "experiment_grid",
    "rows_equivalent",
    "EXPERIMENT_NAMES",
    "MEASURED_FIELDS",
    "POLICY_ORDER",
]

POLICY_ORDER: tuple[str, ...] = ("fifo", "lru", "lfu", "arc", "fbf")
CODE_ORDER: tuple[str, ...] = ("tip", "hdd1", "triple-star", "star")


@dataclass(frozen=True)
class Scale:
    """How big to run an experiment."""

    n_errors: int = 120
    workers: int = 128
    cache_mbs: tuple[float, ...] = (8, 16, 32, 64, 128, 256, 512)
    seed: int = 42
    chunk_size: str = "32KB"
    policies: tuple[str, ...] = POLICY_ORDER
    codes: tuple[str, ...] = CODE_ORDER
    ps_main: tuple[int, ...] = (7, 11, 13)
    ps_tip: tuple[int, ...] = (5, 7, 11, 13)

    @property
    def chunk_bytes(self) -> int:
        return parse_size(self.chunk_size)

    def blocks_for(self, cache_mb: float) -> int:
        return int(cache_mb * 1024 * 1024) // self.chunk_bytes


QUICK = Scale(
    n_errors=48,
    workers=32,
    cache_mbs=(2, 4, 8, 16, 32, 64),
)

FULL = Scale(
    n_errors=400,
    workers=128,
    cache_mbs=(8, 16, 32, 64, 128, 256, 512, 1024, 2048),
)


#: SweepPoint columns that are *measured* wall-clock quantities (Table
#: IV's planning overhead), not simulated ones.  They vary run to run on
#: any machine — serial or parallel — and are therefore excluded from the
#: engine's determinism contract (see :func:`rows_equivalent`).
MEASURED_FIELDS: tuple[str, ...] = ("overhead_ms", "overhead_percent")


@dataclass(frozen=True, eq=False)
class SweepPoint:
    """One measurement: a (code, p, policy, cache size) cell.

    Equality treats NaN fields (the not-measured defaults) as equal to
    each other, so rows stay comparable after a pickle round-trip through
    the process pool or a JSON round-trip through the result cache (both
    produce fresh NaN objects, and ``nan != nan``).
    """

    experiment: str
    code: str
    p: int
    policy: str
    cache_mb: float
    hit_ratio: float = float("nan")
    disk_reads: int = -1
    avg_response_time: float = float("nan")
    reconstruction_time: float = float("nan")
    overhead_ms: float = float("nan")
    overhead_percent: float = float("nan")
    scheme_mode: str = "fbf"
    #: cluster-grid columns ("" / False / NaN outside kind="cluster").
    redundancy: str = ""
    limplock: bool = False
    cross_rack_mb: float = float("nan")
    p99_response_time: float = float("nan")

    def _key(self, exclude: tuple[str, ...] = ()) -> tuple:
        # NaN normalised to None so eq and hash agree (hash(nan) is
        # id-based on 3.10+, which would break the hash/eq contract).
        return tuple(
            None
            if isinstance(v, float) and math.isnan(v)
            else v
            for v in (
                getattr(self, f.name)
                for f in fields(self)
                if f.name not in exclude
            )
        )

    def simulated_key(self) -> tuple:
        """Every deterministic (simulated) column — the comparison basis
        for parallel-vs-serial and cached-vs-computed equivalence."""
        return self._key(MEASURED_FIELDS)

    def __eq__(self, other: object):
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())


def rows_equivalent(
    a: Sequence["SweepPoint"], b: Sequence["SweepPoint"]
) -> bool:
    """True when two sweeps agree on every *simulated* metric, row for row.

    This is the engine's determinism contract: scheduling (worker count,
    cache hits, execution order) must never change a simulated value.
    The measured overhead columns (:data:`MEASURED_FIELDS`) are excluded —
    they are wall-clock timings and legitimately vary between any two
    runs, serial or parallel.
    """
    return len(a) == len(b) and all(
        x.simulated_key() == y.simulated_key() for x, y in zip(a, b)
    )


def _points(grid: Sequence[GridPoint], engine: EngineConfig | None) -> list[SweepPoint]:
    return run_grid(grid, engine).points


# -- grid builders (canonical order == the old nested loops) ------------------

def _sweep_grid(
    kind: str,
    experiment: str,
    codes: Sequence[str],
    ps: Sequence[int],
    scale: Scale,
    policies: Sequence[str] | None = None,
    scheme_mode: str = "fbf",
) -> list[GridPoint]:
    return [
        GridPoint(
            kind=kind,
            experiment=experiment,
            code=code,
            p=p,
            policy=policy,
            cache_mb=mb,
            scheme_mode=scheme_mode,
            n_errors=scale.n_errors,
            seed=scale.seed,
            sor_workers=scale.workers,
            chunk_size=scale.chunk_size,
        )
        for code in codes
        for p in ps
        for policy in (policies or scale.policies)
        for mb in scale.cache_mbs
    ]


def fig8_grid(scale: Scale = QUICK) -> list[GridPoint]:
    return _sweep_grid("trace", "fig8", scale.codes, scale.ps_main, scale)


def fig9_grid(scale: Scale = QUICK) -> list[GridPoint]:
    return _sweep_grid("trace", "fig9", ("tip",), scale.ps_tip, scale)


def fig10_grid(scale: Scale = QUICK) -> list[GridPoint]:
    return _sweep_grid("des", "fig10", scale.codes, scale.ps_main, scale)


def fig11_grid(scale: Scale = QUICK) -> list[GridPoint]:
    return _sweep_grid("des", "fig11", ("tip",), scale.ps_tip, scale)


def table4_grid(scale: Scale = QUICK) -> list[GridPoint]:
    mid_mb = scale.cache_mbs[len(scale.cache_mbs) // 2]
    small = replace(scale, cache_mbs=(mid_mb,), policies=("fbf",))
    return _sweep_grid("des", "table4", scale.codes, scale.ps_tip, small)


def ablation_scheme_grid(
    scale: Scale = QUICK, code: str = "tip", p: int = 7
) -> list[GridPoint]:
    small = replace(scale, policies=("fbf",))
    return [
        point
        for mode in ("typical", "fbf", "greedy")
        for point in _sweep_grid(
            "trace", "ablation_scheme", (code,), (p,), small, scheme_mode=mode
        )
    ]


def lrc_grid(scale: Scale = QUICK) -> list[GridPoint]:
    """LRC extension sweep (DESIGN.md §9): hit ratio vs cache blocks.

    The same unified trace replay as fig8, but through the
    :class:`~repro.engine.backends.LRCBackend` — one engine, another
    code.  Cache sizes are small (8–64 blocks at 32 KB chunks) because an
    LRC(12,2,2) stripe only has 16 blocks, and SOR width 4 matches the
    CLI's ``lrc`` demo so the partitions stay non-degenerate.
    """
    small = replace(scale, cache_mbs=(0.25, 0.5, 1.0, 2.0), workers=4)
    return _sweep_grid("trace", "lrc", ("lrc(12,2,2)",), (0,), small)


def ablation_demotion_grid(
    scale: Scale = QUICK, code: str = "tip", p: int = 7
) -> list[GridPoint]:
    return [
        GridPoint(
            kind="demotion",
            experiment="ablation_demotion",
            code=code,
            p=p,
            policy="fbf" if demote else "fbf-sticky",
            cache_mb=mb,
            n_errors=scale.n_errors,
            seed=scale.seed,
            sor_workers=scale.workers,
            chunk_size=scale.chunk_size,
            demote_on_hit=demote,
        )
        for demote in (True, False)
        for mb in scale.cache_mbs
    ]


def cluster_grid(scale: Scale = QUICK, code: str = "tip", p: int = 7) -> list[GridPoint]:
    """Cross-rack recovery sweep: EC (FBF/LRU/ARC) vs replication.

    Every point repairs the same partial-stripe failure trace on a
    3-rack x 3-node cluster with 1 MB chunks and ~10:1 oversubscribed
    uplinks (see :mod:`repro.sim.cluster`), healthy and with one
    limplocked node.  The EC rows show cross-rack recovery traffic a
    chain-length factor above replication's — link bandwidth, not the
    disks, is the measured bottleneck — and what each cache policy buys
    back.  Workers are capped at 8 (one controller node's cores).
    """
    cache_mb = 64.0
    points = []
    for limplock in (False, True):
        for policy in ("fbf", "lru", "arc"):
            points.append(
                GridPoint(
                    kind="cluster",
                    experiment="cluster",
                    code=code,
                    p=p,
                    policy=policy,
                    cache_mb=cache_mb,
                    n_errors=scale.n_errors,
                    seed=scale.seed,
                    sor_workers=min(scale.workers, 8),
                    chunk_size="1MB",
                    redundancy="ec",
                    limplock=limplock,
                )
            )
        points.append(
            GridPoint(
                kind="cluster",
                experiment="cluster",
                code=code,
                p=p,
                policy="rep",
                cache_mb=cache_mb,
                n_errors=scale.n_errors,
                seed=scale.seed,
                sor_workers=min(scale.workers, 8),
                chunk_size="1MB",
                redundancy="rep",
                limplock=limplock,
            )
        )
    return points


#: grid builder per CLI experiment name (``repro-fbf bench`` menu).
EXPERIMENT_GRIDS = {
    "fig8": fig8_grid,
    "fig9": fig9_grid,
    "fig10": fig10_grid,
    "fig11": fig11_grid,
    "table4": table4_grid,
    "ablation-scheme": ablation_scheme_grid,
    "ablation-demotion": ablation_demotion_grid,
    "lrc": lrc_grid,
    "cluster": cluster_grid,
}

EXPERIMENT_NAMES: tuple[str, ...] = tuple(EXPERIMENT_GRIDS)


def experiment_grid(name: str, scale: Scale = QUICK) -> list[GridPoint]:
    """The canonical task list of a named experiment (for the bench CLI)."""
    try:
        builder = EXPERIMENT_GRIDS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; valid: {', '.join(EXPERIMENT_GRIDS)}"
        ) from None
    return builder(scale)


# -- runners ------------------------------------------------------------------

def fig8_hit_ratio(
    scale: Scale = QUICK, engine: EngineConfig | None = None
) -> list[SweepPoint]:
    """Figure 8: hit ratio vs cache size, 4 codes x P in {7, 11, 13}."""
    return _points(fig8_grid(scale), engine)


def fig9_read_ops(
    scale: Scale = QUICK, engine: EngineConfig | None = None
) -> list[SweepPoint]:
    """Figure 9: disk reads vs cache size, TIP-code, P in {5, 7, 11, 13}."""
    return _points(fig9_grid(scale), engine)


def fig10_response_time(
    scale: Scale = QUICK, engine: EngineConfig | None = None
) -> list[SweepPoint]:
    """Figure 10: average response time, 4 codes x P in {7, 11, 13}."""
    return _points(fig10_grid(scale), engine)


def fig11_reconstruction_time(
    scale: Scale = QUICK, engine: EngineConfig | None = None
) -> list[SweepPoint]:
    """Figure 11: reconstruction time, TIP-code, P in {5, 7, 11, 13}."""
    return _points(fig11_grid(scale), engine)


def table4_overhead(
    scale: Scale = QUICK, engine: EngineConfig | None = None
) -> list[SweepPoint]:
    """Table IV: FBF temporal overhead per code x P in {5, 7, 11, 13}.

    One mid-sweep cache size is used (overhead is cache-size independent,
    as the paper observes).
    """
    return _points(table4_grid(scale), engine)


# -- Table V: maximum improvements -------------------------------------------

def table5_max_improvement(
    scale: Scale = QUICK,
    fig8: Sequence[SweepPoint] | None = None,
    fig9: Sequence[SweepPoint] | None = None,
    fig10: Sequence[SweepPoint] | None = None,
    fig11: Sequence[SweepPoint] | None = None,
    hit_ratio_floor: float = 0.02,
    engine: EngineConfig | None = None,
) -> dict[str, dict[str, float]]:
    """Table V: max improvement of FBF over each baseline, per metric.

    Returns ``{metric: {baseline: percent}}``.  Hit ratio improvement is
    ``(fbf - base) / base``; for the cost metrics it is ``(base - fbf) /
    base`` — both in percent, exactly the paper's convention.  Configs
    where the baseline hit ratio is below ``hit_ratio_floor`` are skipped
    for the hit-ratio row: a near-zero denominator turns the percentage
    into noise (the paper's reported maxima all occur at materially
    nonzero baselines).  Accepts precomputed sweeps to avoid rerunning
    them.
    """
    fig8 = fig8 if fig8 is not None else fig8_hit_ratio(scale, engine)
    fig9 = fig9 if fig9 is not None else fig9_read_ops(scale, engine)
    fig10 = fig10 if fig10 is not None else fig10_response_time(scale, engine)
    fig11 = fig11 if fig11 is not None else fig11_reconstruction_time(scale, engine)
    baselines = [p for p in scale.policies if p != "fbf"]

    def max_improvement(
        points: Sequence[SweepPoint],
        attr: str,
        higher_better: bool,
        floor: float = 0.0,
    ):
        by_config: dict[tuple, dict[str, float]] = {}
        for pt in points:
            key = (pt.code, pt.p, pt.cache_mb)
            by_config.setdefault(key, {})[pt.policy] = getattr(pt, attr)
        best: dict[str, float] = {b: float("-inf") for b in baselines}
        for cfg, vals in by_config.items():
            if "fbf" not in vals:
                continue
            fbf = vals["fbf"]
            for b in baselines:
                if b not in vals or vals[b] <= 0 or vals[b] < floor:
                    continue
                if higher_better:
                    gain = 100.0 * (fbf - vals[b]) / vals[b]
                else:
                    gain = 100.0 * (vals[b] - fbf) / vals[b]
                if gain > best[b]:
                    best[b] = gain
        return best

    return {
        "hit_ratio": max_improvement(
            fig8, "hit_ratio", higher_better=True, floor=hit_ratio_floor
        ),
        "disk_reads": max_improvement(fig9, "disk_reads", higher_better=False),
        "response_time": max_improvement(fig10, "avg_response_time", higher_better=False),
        "reconstruction_time": max_improvement(
            fig11, "reconstruction_time", higher_better=False
        ),
    }


# -- ablations (DESIGN.md §6) -------------------------------------------------

def ablation_scheme(
    scale: Scale = QUICK,
    code: str = "tip",
    p: int = 7,
    engine: EngineConfig | None = None,
) -> list[SweepPoint]:
    """Chain-selection ablation: typical vs fbf (round-robin) vs greedy.

    All three run the FBF replacement policy, isolating the effect of the
    recovery-scheme generator.
    """
    return _points(ablation_scheme_grid(scale, code, p), engine)


def ablation_demotion(
    scale: Scale = QUICK,
    code: str = "tip",
    p: int = 7,
    engine: EngineConfig | None = None,
) -> list[SweepPoint]:
    """Demote-on-hit (paper) vs sticky priorities, FBF policy."""
    return _points(ablation_demotion_grid(scale, code, p), engine)


def lrc_hit_ratio(
    scale: Scale = QUICK, engine: EngineConfig | None = None
) -> list[SweepPoint]:
    """LRC extension: hit ratio / disk reads vs cache size (DESIGN.md §9)."""
    return _points(lrc_grid(scale), engine)


def cluster_recovery(
    scale: Scale = QUICK,
    code: str = "tip",
    p: int = 7,
    engine: EngineConfig | None = None,
) -> list[SweepPoint]:
    """Cross-rack cluster recovery: EC vs replication, FBF vs LRU/ARC,
    healthy and limplocked (DESIGN.md §15)."""
    return _points(cluster_grid(scale, code, p), engine)
