"""Experiment runners: one per figure/table of the paper's evaluation.

Each runner returns a list of :class:`SweepPoint` rows; the reporting
module turns them into the paper's tables/series.  Scales are configurable
so the same code serves quick CI benchmarks and full reproductions:

* :data:`QUICK` — minutes on a laptop; coarse cache-size grid.
* :data:`FULL` — the paper's grid (128 SOR workers, fine sweep).

The paper's axes are preserved: cache size in MB with 32 KB chunks, the
four codes, P in {5, 7, 11, 13}, and the policy set {FIFO, LRU, LFU, ARC,
FBF}.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from ..codes.registry import make_code
from ..sim.reconstruction import SimConfig, run_reconstruction
from ..sim.tracesim import PlanCache, simulate_cache_trace
from ..utils import parse_size
from ..workloads.errors import ErrorTraceConfig, generate_errors

__all__ = [
    "Scale",
    "QUICK",
    "FULL",
    "SweepPoint",
    "fig8_hit_ratio",
    "fig9_read_ops",
    "fig10_response_time",
    "fig11_reconstruction_time",
    "table4_overhead",
    "table5_max_improvement",
    "ablation_scheme",
    "ablation_demotion",
    "POLICY_ORDER",
]

POLICY_ORDER: tuple[str, ...] = ("fifo", "lru", "lfu", "arc", "fbf")
CODE_ORDER: tuple[str, ...] = ("tip", "hdd1", "triple-star", "star")


@dataclass(frozen=True)
class Scale:
    """How big to run an experiment."""

    n_errors: int = 120
    workers: int = 128
    cache_mbs: tuple[float, ...] = (8, 16, 32, 64, 128, 256, 512)
    seed: int = 42
    chunk_size: str = "32KB"
    policies: tuple[str, ...] = POLICY_ORDER
    codes: tuple[str, ...] = CODE_ORDER
    ps_main: tuple[int, ...] = (7, 11, 13)
    ps_tip: tuple[int, ...] = (5, 7, 11, 13)

    @property
    def chunk_bytes(self) -> int:
        return parse_size(self.chunk_size)

    def blocks_for(self, cache_mb: float) -> int:
        return int(cache_mb * 1024 * 1024) // self.chunk_bytes


QUICK = Scale(
    n_errors=48,
    workers=32,
    cache_mbs=(2, 4, 8, 16, 32, 64),
)

FULL = Scale(
    n_errors=400,
    workers=128,
    cache_mbs=(8, 16, 32, 64, 128, 256, 512, 1024, 2048),
)


@dataclass(frozen=True)
class SweepPoint:
    """One measurement: a (code, p, policy, cache size) cell."""

    experiment: str
    code: str
    p: int
    policy: str
    cache_mb: float
    hit_ratio: float = float("nan")
    disk_reads: int = -1
    avg_response_time: float = float("nan")
    reconstruction_time: float = float("nan")
    overhead_ms: float = float("nan")
    overhead_percent: float = float("nan")
    scheme_mode: str = "fbf"


def _errors_for(layout, scale: Scale):
    return generate_errors(
        layout, ErrorTraceConfig(n_errors=scale.n_errors, seed=scale.seed)
    )


# -- trace-driven sweeps (Figures 8 and 9) ----------------------------------

def _trace_sweep(
    experiment: str,
    codes: Sequence[str],
    ps: Sequence[int],
    scale: Scale,
    scheme_mode: str = "fbf",
) -> list[SweepPoint]:
    points: list[SweepPoint] = []
    for code in codes:
        for p in ps:
            layout = make_code(code, p)
            errors = _errors_for(layout, scale)
            plans = PlanCache(layout, scheme_mode)
            for policy in scale.policies:
                for mb in scale.cache_mbs:
                    res = simulate_cache_trace(
                        layout,
                        errors,
                        policy=policy,
                        capacity_blocks=scale.blocks_for(mb),
                        scheme_mode=scheme_mode,
                        workers=scale.workers,
                        plan_cache=plans,
                    )
                    points.append(
                        SweepPoint(
                            experiment=experiment,
                            code=layout.name,
                            p=p,
                            policy=policy,
                            cache_mb=mb,
                            hit_ratio=res.hit_ratio,
                            disk_reads=res.disk_reads,
                            scheme_mode=scheme_mode,
                        )
                    )
    return points


def fig8_hit_ratio(scale: Scale = QUICK) -> list[SweepPoint]:
    """Figure 8: hit ratio vs cache size, 4 codes x P in {7, 11, 13}."""
    return _trace_sweep("fig8", scale.codes, scale.ps_main, scale)


def fig9_read_ops(scale: Scale = QUICK) -> list[SweepPoint]:
    """Figure 9: disk reads vs cache size, TIP-code, P in {5, 7, 11, 13}."""
    return _trace_sweep("fig9", ("tip",), scale.ps_tip, scale)


# -- event-driven sweeps (Figures 10 and 11, Table IV) -----------------------

def _des_sweep(
    experiment: str,
    codes: Sequence[str],
    ps: Sequence[int],
    scale: Scale,
    policies: Sequence[str] | None = None,
    scheme_mode: str = "fbf",
) -> list[SweepPoint]:
    points: list[SweepPoint] = []
    for code in codes:
        for p in ps:
            layout = make_code(code, p)
            errors = _errors_for(layout, scale)
            for policy in policies or scale.policies:
                for mb in scale.cache_mbs:
                    config = SimConfig(
                        policy=policy,
                        cache_size=int(mb * 1024 * 1024),
                        chunk_size=scale.chunk_size,
                        scheme_mode=scheme_mode,
                        workers=scale.workers,
                    )
                    rep = run_reconstruction(layout, errors, config)
                    points.append(
                        SweepPoint(
                            experiment=experiment,
                            code=layout.name,
                            p=p,
                            policy=policy,
                            cache_mb=mb,
                            hit_ratio=rep.hit_ratio,
                            disk_reads=rep.disk_reads,
                            avg_response_time=rep.avg_response_time,
                            reconstruction_time=rep.reconstruction_time,
                            overhead_ms=rep.overhead_mean_s * 1000.0,
                            overhead_percent=rep.overhead_percent,
                            scheme_mode=scheme_mode,
                        )
                    )
    return points


def fig10_response_time(scale: Scale = QUICK) -> list[SweepPoint]:
    """Figure 10: average response time, 4 codes x P in {7, 11, 13}."""
    return _des_sweep("fig10", scale.codes, scale.ps_main, scale)


def fig11_reconstruction_time(scale: Scale = QUICK) -> list[SweepPoint]:
    """Figure 11: reconstruction time, TIP-code, P in {5, 7, 11, 13}."""
    return _des_sweep("fig11", ("tip",), scale.ps_tip, scale)


def table4_overhead(scale: Scale = QUICK) -> list[SweepPoint]:
    """Table IV: FBF temporal overhead per code x P in {5, 7, 11, 13}.

    One mid-sweep cache size is used (overhead is cache-size independent,
    as the paper observes).
    """
    mid_mb = scale.cache_mbs[len(scale.cache_mbs) // 2]
    small = replace(scale, cache_mbs=(mid_mb,), policies=("fbf",))
    return _des_sweep("table4", scale.codes, scale.ps_tip, small)


# -- Table V: maximum improvements -------------------------------------------

def table5_max_improvement(
    scale: Scale = QUICK,
    fig8: Sequence[SweepPoint] | None = None,
    fig9: Sequence[SweepPoint] | None = None,
    fig10: Sequence[SweepPoint] | None = None,
    fig11: Sequence[SweepPoint] | None = None,
    hit_ratio_floor: float = 0.02,
) -> dict[str, dict[str, float]]:
    """Table V: max improvement of FBF over each baseline, per metric.

    Returns ``{metric: {baseline: percent}}``.  Hit ratio improvement is
    ``(fbf - base) / base``; for the cost metrics it is ``(base - fbf) /
    base`` — both in percent, exactly the paper's convention.  Configs
    where the baseline hit ratio is below ``hit_ratio_floor`` are skipped
    for the hit-ratio row: a near-zero denominator turns the percentage
    into noise (the paper's reported maxima all occur at materially
    nonzero baselines).  Accepts precomputed sweeps to avoid rerunning
    them.
    """
    fig8 = fig8 if fig8 is not None else fig8_hit_ratio(scale)
    fig9 = fig9 if fig9 is not None else fig9_read_ops(scale)
    fig10 = fig10 if fig10 is not None else fig10_response_time(scale)
    fig11 = fig11 if fig11 is not None else fig11_reconstruction_time(scale)
    baselines = [p for p in scale.policies if p != "fbf"]

    def max_improvement(
        points: Sequence[SweepPoint],
        attr: str,
        higher_better: bool,
        floor: float = 0.0,
    ):
        by_config: dict[tuple, dict[str, float]] = {}
        for pt in points:
            key = (pt.code, pt.p, pt.cache_mb)
            by_config.setdefault(key, {})[pt.policy] = getattr(pt, attr)
        best: dict[str, float] = {b: float("-inf") for b in baselines}
        for cfg, vals in by_config.items():
            if "fbf" not in vals:
                continue
            fbf = vals["fbf"]
            for b in baselines:
                if b not in vals or vals[b] <= 0 or vals[b] < floor:
                    continue
                if higher_better:
                    gain = 100.0 * (fbf - vals[b]) / vals[b]
                else:
                    gain = 100.0 * (vals[b] - fbf) / vals[b]
                if gain > best[b]:
                    best[b] = gain
        return best

    return {
        "hit_ratio": max_improvement(
            fig8, "hit_ratio", higher_better=True, floor=hit_ratio_floor
        ),
        "disk_reads": max_improvement(fig9, "disk_reads", higher_better=False),
        "response_time": max_improvement(fig10, "avg_response_time", higher_better=False),
        "reconstruction_time": max_improvement(
            fig11, "reconstruction_time", higher_better=False
        ),
    }


# -- ablations (DESIGN.md §6) -------------------------------------------------

def ablation_scheme(scale: Scale = QUICK, code: str = "tip", p: int = 7) -> list[SweepPoint]:
    """Chain-selection ablation: typical vs fbf (round-robin) vs greedy.

    All three run the FBF replacement policy, isolating the effect of the
    recovery-scheme generator.
    """
    small = replace(scale, policies=("fbf",))
    points: list[SweepPoint] = []
    for mode in ("typical", "fbf", "greedy"):
        points.extend(
            _trace_sweep("ablation_scheme", (code,), (p,), small, scheme_mode=mode)
        )
    return points


def ablation_demotion(
    scale: Scale = QUICK, code: str = "tip", p: int = 7
) -> list[SweepPoint]:
    """Demote-on-hit (paper) vs sticky priorities, FBF policy."""
    from ..core.fbf_cache import FBFCache

    layout = make_code(code, p)
    errors = _errors_for(layout, scale)
    plans = PlanCache(layout, "fbf")
    points: list[SweepPoint] = []
    for demote in (True, False):
        label = "fbf" if demote else "fbf-sticky"
        for mb in scale.cache_mbs:
            res = simulate_cache_trace(
                layout,
                errors,
                capacity_blocks=scale.blocks_for(mb),
                workers=scale.workers,
                plan_cache=plans,
                policy_factory=lambda cap, d=demote: FBFCache(cap, demote_on_hit=d),
            )
            points.append(
                SweepPoint(
                    experiment="ablation_demotion",
                    code=layout.name,
                    p=p,
                    policy=label,
                    cache_mb=mb,
                    hit_ratio=res.hit_ratio,
                    disk_reads=res.disk_reads,
                )
            )
    return points
