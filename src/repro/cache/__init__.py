"""Replacement policies: the paper's baselines plus related-work extras.

Baselines evaluated in the paper: :class:`FIFOCache`, :class:`LRUCache`,
:class:`LFUCache`, :class:`ARCCache`.  Related-work policies implemented
for completeness: :class:`LRUKCache`, :class:`TwoQCache`,
:class:`LRFUCache`, :class:`FBRCache`.  The FBF policy itself is
:class:`repro.core.FBFCache` and is also reachable through
:func:`make_policy("fbf", ...) <make_policy>`.
"""

from .arc import ARCCache
from .base import CachePolicy, CacheStats, SimpleCachePolicy
from .fbr import FBRCache
from .fifo import FIFOCache
from .lfu import LFUCache
from .lirs import LIRSCache
from .lrfu import LRFUCache
from .lru import LRUCache
from .lruk import LRUKCache
from .mq import MQCache
from .registry import PAPER_BASELINES, POLICIES, available_policies, make_policy
from .twoq import TwoQCache

__all__ = [
    "CachePolicy",
    "CacheStats",
    "SimpleCachePolicy",
    "FIFOCache",
    "LRUCache",
    "LFUCache",
    "ARCCache",
    "LRUKCache",
    "TwoQCache",
    "LRFUCache",
    "FBRCache",
    "MQCache",
    "LIRSCache",
    "POLICIES",
    "PAPER_BASELINES",
    "available_policies",
    "make_policy",
]
