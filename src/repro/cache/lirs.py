"""LIRS replacement (Jiang & Zhang, SIGMETRICS 2002).

LIRS ranks blocks by *Inter-Reference Recency* (IRR — the number of
distinct blocks seen between consecutive accesses to a block) rather than
plain recency.  Blocks with low IRR form the **LIR** set and own most of
the cache; everything else is **HIR**, cycling through a small queue
``Q``.  The recency stack ``S`` tracks both resident and recently-seen
non-resident blocks, so one rereference of a block with low IRR promotes
it into LIR — scan resistance without ghost-list tuning.

Structures follow the paper: ``S`` (recency stack, mixed LIR/HIR, may
hold non-resident HIR entries), ``Q`` (resident HIR blocks, FIFO), stack
pruning keeps an LIR block at the bottom of ``S``.  Non-resident history
in ``S`` is bounded to ``history_factor * capacity`` entries.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import CachePolicy, Key

__all__ = ["LIRSCache"]

_LIR = "LIR"
_HIR = "HIR"


class LIRSCache(CachePolicy):
    """LIRS with the paper's recommended ~1% HIR allotment (min 1 slot)."""

    __slots__ = ("l_hirs", "l_lirs", "history_limit", "_s", "_q", "_resident", "_lir_count")

    name = "lirs"

    def __init__(
        self,
        capacity: int,
        hir_fraction: float = 0.1,
        history_factor: int = 2,
    ):
        if not 0.0 < hir_fraction < 1.0:
            raise ValueError(f"hir_fraction must be in (0,1), got {hir_fraction}")
        if history_factor < 0:
            raise ValueError(f"history_factor must be >= 0, got {history_factor}")
        super().__init__(capacity)
        self.l_hirs = max(1, int(capacity * hir_fraction)) if capacity > 1 else capacity
        self.l_lirs = max(0, capacity - self.l_hirs)
        self.history_limit = max(capacity * history_factor, self.l_hirs)
        # S: key -> status, ordered bottom (LRU) .. top (MRU).
        self._s: OrderedDict[Key, str] = OrderedDict()
        self._q: OrderedDict[Key, None] = OrderedDict()  # resident HIR
        # Admission-ordered; a dict (not a set) so any iteration is
        # deterministic.
        self._resident: dict[Key, None] = {}
        self._lir_count = 0

    # -- introspection -------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def status_of(self, key: Key) -> str:
        """'LIR' or 'HIR' for a resident block (test/debug hook)."""
        if key not in self._resident:
            raise KeyError(key)
        return self._s.get(key, _HIR)

    def _clear(self) -> None:
        self._s.clear()
        self._q.clear()
        self._resident.clear()
        self._lir_count = 0

    # -- mechanics --------------------------------------------------------------
    def _stack_prune(self) -> None:
        """Drop bottom-of-S entries until the bottom is LIR."""
        while self._s:
            key, status = next(iter(self._s.items()))
            if status == _LIR:
                return
            del self._s[key]

    def _bound_history(self) -> None:
        """Cap non-resident entries in S (oldest first)."""
        non_resident = sum(1 for k in self._s if k not in self._resident)
        if non_resident <= self.history_limit:
            return
        for key in list(self._s):
            if key not in self._resident:
                del self._s[key]
                non_resident -= 1
                if non_resident <= self.history_limit:
                    break
        self._stack_prune()

    def _demote_bottom_lir(self) -> None:
        """Bottom LIR of S becomes resident HIR at the end of Q.

        Non-LIR history entries below it are pruned first (they are
        non-resident HIR whose recency no longer matters).
        """
        self._stack_prune()
        key, status = next(iter(self._s.items()))
        assert status == _LIR  # a LIR block exists whenever demote is called
        del self._s[key]
        self._lir_count -= 1
        self._q[key] = None
        self._stack_prune()

    def _evict_hir(self) -> None:
        """Evict the front of Q; keep its S history if present."""
        victim, _ = self._q.popitem(last=False)
        self._resident.pop(victim, None)
        self.stats.evictions += 1

    # -- request --------------------------------------------------------------
    def request(self, key: Key, priority: int | None = None) -> bool:
        if self.capacity == 0:
            self.stats.misses += 1
            return False
        hit = key in self._resident
        if hit:
            self.stats.hits += 1
            self._on_hit(key)
        else:
            self.stats.misses += 1
            self._on_miss(key)
        self._bound_history()
        return hit

    def _on_hit(self, key: Key) -> None:
        status = self._s.get(key)
        if status == _LIR:
            self._s.move_to_end(key)
            self._stack_prune()
            return
        # resident HIR
        if key in self._s:  # low IRR observed -> promote
            del self._s[key]
            self._s[key] = _LIR
            self._lir_count += 1
            self._q.pop(key, None)
            if self._lir_count > self.l_lirs:
                self._demote_bottom_lir()
        else:  # no recency history: stay HIR, refresh position
            self._s[key] = _HIR
            if key in self._q:
                self._q.move_to_end(key)

    def _on_miss(self, key: Key) -> None:
        if len(self._resident) >= self.capacity:
            if self._q:
                self._evict_hir()
            else:
                # no resident HIR: demote a LIR first, then evict it
                self._demote_bottom_lir()
                self._evict_hir()
        self._resident[key] = None
        if self._lir_count < self.l_lirs and key not in self._s:
            # startup: fill the LIR set directly
            self._s[key] = _LIR
            self._lir_count += 1
            return
        if key in self._s:  # non-resident HIR with recency -> LIR
            del self._s[key]
            self._s[key] = _LIR
            self._lir_count += 1
            if self._lir_count > self.l_lirs:
                self._demote_bottom_lir()
        else:
            self._s[key] = _HIR
            self._q[key] = None
