"""2Q replacement (Johnson & Shasha, VLDB 1994) — the "full version".

Three structures: ``A1in`` (a FIFO of recently admitted blocks), ``A1out``
(a ghost FIFO of keys recently pushed out of A1in), and ``Am`` (an LRU of
established hot blocks).  A block only enters Am when it is referenced
while its key sits in A1out — one-shot scans therefore wash through A1in
without polluting the hot list.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import CachePolicy, Key

__all__ = ["TwoQCache"]


class TwoQCache(CachePolicy):
    """Full 2Q with the paper's recommended Kin=C/4, Kout=C/2 defaults."""

    __slots__ = ("kin", "kout", "_a1in", "_a1out", "_am")

    name = "2q"

    def __init__(
        self,
        capacity: int,
        kin_fraction: float = 0.25,
        kout_fraction: float = 0.5,
    ):
        super().__init__(capacity)
        if not 0.0 < kin_fraction < 1.0:
            raise ValueError(f"kin_fraction must be in (0,1), got {kin_fraction}")
        if kout_fraction <= 0.0:
            raise ValueError(f"kout_fraction must be > 0, got {kout_fraction}")
        self.kin = max(1, int(capacity * kin_fraction)) if capacity else 0
        self.kout = max(1, int(capacity * kout_fraction)) if capacity else 0
        self._a1in: OrderedDict[Key, None] = OrderedDict()
        self._a1out: OrderedDict[Key, None] = OrderedDict()
        self._am: OrderedDict[Key, None] = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._a1in or key in self._am

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def _clear(self) -> None:
        self._a1in.clear()
        self._a1out.clear()
        self._am.clear()

    def _reclaim(self) -> None:
        """Free one resident slot (paper's ``reclaimfor``)."""
        if len(self) < self.capacity:
            return
        if len(self._a1in) > self.kin or not self._am:
            victim, _ = self._a1in.popitem(last=False)
            self._a1out[victim] = None
            if len(self._a1out) > self.kout:
                self._a1out.popitem(last=False)
        else:
            self._am.popitem(last=False)
        self.stats.evictions += 1

    def request(self, key: Key, priority: int | None = None) -> bool:
        if key in self._am:
            self._am.move_to_end(key)
            self.stats.hits += 1
            return True
        if key in self._a1in:
            # Hit in A1in: the block stays put (2Q deliberately does not
            # promote on A1in hits).
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if self.capacity == 0:
            return False
        self._reclaim()
        if key in self._a1out:
            del self._a1out[key]
            self._am[key] = None
        else:
            self._a1in[key] = None
        return False
