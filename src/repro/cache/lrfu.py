"""LRFU replacement (Lee et al., IEEE ToC 2001).

LRFU scores each block with a Combined Recency and Frequency value
``CRF(b) = sum F(now - t_i)`` over its past references, with the weighing
function ``F(x) = (1/2)^(lambda * x)``.  ``lambda -> 0`` degenerates to
LFU, ``lambda = 1`` to LRU; intermediate values span the spectrum.

The incremental identity ``CRF_new = F(0) + F(delta) * CRF_old`` lets the
score be maintained per block in O(1) on access.  Eviction scans residents
for the minimum decayed score — O(C), acceptable at simulation cache sizes
(the original paper uses a heap; the scan keeps the code transparent and
the test oracle trivial).
"""

from __future__ import annotations


from .base import Key, SimpleCachePolicy

__all__ = ["LRFUCache"]


class LRFUCache(SimpleCachePolicy):
    """LRFU with weighing function F(x) = 0.5 ** (lam * x)."""

    __slots__ = ("lam", "_clock", "_blocks")

    name = "lrfu"

    def __init__(self, capacity: int, lam: float = 0.1):
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {lam}")
        super().__init__(capacity)
        self.lam = lam
        self._clock = 0
        # key -> (crf at last access, last access time)
        self._blocks: dict[Key, tuple[float, int]] = {}

    def __contains__(self, key: Key) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def _clear(self) -> None:
        self._clock = 0
        self._blocks.clear()

    def _weight(self, age: float) -> float:
        return 0.5 ** (self.lam * age)

    def _on_hit(self, key: Key) -> None:
        self._clock += 1
        crf, last = self._blocks[key]
        self._blocks[key] = (1.0 + self._weight(self._clock - last) * crf, self._clock)

    def _admit(self, key: Key, priority: int | None) -> None:
        self._clock += 1
        self._blocks[key] = (1.0, self._clock)

    def crf(self, key: Key) -> float:
        """The block's CRF decayed to the current clock (test/debug hook)."""
        crf, last = self._blocks[key]
        return self._weight(self._clock - last) * crf

    def _evict(self) -> Key:
        victim = min(self._blocks, key=self.crf)
        del self._blocks[victim]
        return victim
