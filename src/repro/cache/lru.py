"""Least-Recently-Used replacement (Mattson et al., 1970)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from .base import Key, SimpleCachePolicy

__all__ = ["LRUCache"]


class LRUCache(SimpleCachePolicy):
    """Evicts the block whose last access is oldest."""

    __slots__ = ("_blocks",)

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._blocks: OrderedDict[Key, None] = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def _clear(self) -> None:
        self._blocks.clear()

    def _on_hit(self, key: Key) -> None:
        self._blocks.move_to_end(key)

    def _admit(self, key: Key, priority: int | None) -> None:
        self._blocks[key] = None

    def _evict(self) -> Key:
        victim, _ = self._blocks.popitem(last=False)
        return victim

    def request_many(
        self, keys: Sequence[Key], priorities: Iterable[int] | None = None
    ) -> None:
        # The request() flow inlined with everything in locals (grid
        # replay hot path); priorities are ignored, as in _admit.
        blocks = self._blocks
        capacity = self.capacity
        stats = self.stats
        if capacity == 0:
            stats.misses += len(keys)
            return
        move = blocks.move_to_end
        pop = blocks.popitem
        hits = misses = evictions = 0
        for key in keys:
            if key in blocks:
                hits += 1
                move(key)
            else:
                misses += 1
                if len(blocks) >= capacity:
                    pop(last=False)
                    evictions += 1
                blocks[key] = None
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
