"""Least-Recently-Used replacement (Mattson et al., 1970)."""

from __future__ import annotations

from collections import OrderedDict

from .base import Key, SimpleCachePolicy

__all__ = ["LRUCache"]


class LRUCache(SimpleCachePolicy):
    """Evicts the block whose last access is oldest."""

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._blocks: OrderedDict[Key, None] = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def _clear(self) -> None:
        self._blocks.clear()

    def _on_hit(self, key: Key) -> None:
        self._blocks.move_to_end(key)

    def _admit(self, key: Key, priority: int | None) -> None:
        self._blocks[key] = None

    def _evict(self) -> Key:
        victim, _ = self._blocks.popitem(last=False)
        return victim
