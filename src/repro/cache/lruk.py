"""LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD 1993).

Evicts the block whose K-th most recent reference is furthest in the past;
blocks with fewer than K references have infinite backward K-distance and
are evicted first (LRU among themselves), as in the original paper.  A
bounded *retained information* table keeps reference history for evicted
blocks so that a block re-admitted shortly after eviction does not restart
from scratch.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from .base import Key, SimpleCachePolicy

__all__ = ["LRUKCache"]

_INF = float("inf")


class LRUKCache(SimpleCachePolicy):
    """LRU-K with retained history (default K=2)."""

    __slots__ = ("k", "retained", "_clock", "_hist", "_resident", "_ghost_hist")

    name = "lru2"

    def __init__(self, capacity: int, k: int = 2, retained: int | None = None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        super().__init__(capacity)
        self.k = k
        #: how many evicted blocks keep their history (paper's RIP table).
        self.retained = capacity if retained is None else retained
        self._clock = 0
        self._hist: dict[Key, deque[int]] = {}
        self._resident: OrderedDict[Key, None] = OrderedDict()  # LRU tiebreak
        self._ghost_hist: OrderedDict[Key, deque[int]] = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def _clear(self) -> None:
        self._clock = 0
        self._hist.clear()
        self._resident.clear()
        self._ghost_hist.clear()

    def _touch(self, key: Key) -> None:
        self._clock += 1
        hist = self._hist.setdefault(key, deque(maxlen=self.k))
        hist.append(self._clock)

    def _on_hit(self, key: Key) -> None:
        self._touch(key)
        self._resident.move_to_end(key)

    def _admit(self, key: Key, priority: int | None) -> None:
        if key in self._ghost_hist:
            self._hist[key] = self._ghost_hist.pop(key)
        self._touch(key)
        self._resident[key] = None

    def _kth_distance(self, key: Key) -> float:
        hist = self._hist[key]
        if len(hist) < self.k:
            return _INF
        return self._clock - hist[0]

    def _evict(self) -> Key:
        # Max backward K-distance wins; LRU order breaks ties (the resident
        # dict is kept in recency order, so the first max found is LRU-most).
        victim = None
        victim_dist = -1.0
        for key in self._resident:  # iteration order = LRU -> MRU
            dist = self._kth_distance(key)
            if dist > victim_dist:
                victim, victim_dist = key, dist
        assert victim is not None
        del self._resident[victim]
        self._ghost_hist[victim] = self._hist.pop(victim)
        while len(self._ghost_hist) > self.retained:
            self._ghost_hist.popitem(last=False)
        return victim
