"""Least-Frequently-Used replacement (Aho, Denning & Ullman, 1971).

Implemented with the classic O(1) frequency-bucket structure: blocks live
in per-frequency ordered dicts; the minimum populated frequency is tracked
so eviction pops the least-recently-used block of the lowest frequency.
Frequency state is discarded on eviction (plain LFU, no persistence).
"""

from __future__ import annotations

from collections import OrderedDict

from .base import Key, SimpleCachePolicy

__all__ = ["LFUCache"]


class LFUCache(SimpleCachePolicy):
    """Evicts the block with the fewest accesses (LRU among ties)."""

    name = "lfu"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._freq_of: dict[Key, int] = {}
        self._buckets: dict[int, OrderedDict[Key, None]] = {}
        self._min_freq = 0

    def __contains__(self, key: Key) -> bool:
        return key in self._freq_of

    def __len__(self) -> int:
        return len(self._freq_of)

    def _clear(self) -> None:
        self._freq_of.clear()
        self._buckets.clear()
        self._min_freq = 0

    def _bucket(self, freq: int) -> OrderedDict[Key, None]:
        return self._buckets.setdefault(freq, OrderedDict())

    def _on_hit(self, key: Key) -> None:
        freq = self._freq_of[key]
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq_of[key] = freq + 1
        self._bucket(freq + 1)[key] = None

    def _admit(self, key: Key, priority: int | None) -> None:
        self._freq_of[key] = 1
        self._bucket(1)[key] = None
        self._min_freq = 1

    def _evict(self) -> Key:
        bucket = self._buckets[self._min_freq]
        victim, _ = bucket.popitem(last=False)
        if not bucket:
            del self._buckets[self._min_freq]
            # _min_freq is refreshed on the next admit (which sets it to 1).
        del self._freq_of[victim]
        return victim
