"""Least-Frequently-Used replacement (Aho, Denning & Ullman, 1971).

Implemented with the classic O(1) frequency-bucket structure: blocks live
in per-frequency ordered dicts; the minimum populated frequency is tracked
so eviction pops the least-recently-used block of the lowest frequency.
Frequency state is discarded on eviction (plain LFU, no persistence).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from .base import Key, SimpleCachePolicy

__all__ = ["LFUCache"]


class LFUCache(SimpleCachePolicy):
    """Evicts the block with the fewest accesses (LRU among ties)."""

    __slots__ = ("_freq_of", "_buckets", "_min_freq")

    name = "lfu"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._freq_of: dict[Key, int] = {}
        self._buckets: dict[int, OrderedDict[Key, None]] = {}
        self._min_freq = 0

    def __contains__(self, key: Key) -> bool:
        return key in self._freq_of

    def __len__(self) -> int:
        return len(self._freq_of)

    def _clear(self) -> None:
        self._freq_of.clear()
        self._buckets.clear()
        self._min_freq = 0

    def _bucket(self, freq: int) -> OrderedDict[Key, None]:
        return self._buckets.setdefault(freq, OrderedDict())

    def _on_hit(self, key: Key) -> None:
        freq = self._freq_of[key]
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq_of[key] = freq + 1
        self._bucket(freq + 1)[key] = None

    def _admit(self, key: Key, priority: int | None) -> None:
        self._freq_of[key] = 1
        self._bucket(1)[key] = None
        self._min_freq = 1

    def _evict(self) -> Key:
        bucket = self._buckets[self._min_freq]
        victim, _ = bucket.popitem(last=False)
        if not bucket:
            del self._buckets[self._min_freq]
            # _min_freq is refreshed on the next admit (which sets it to 1).
        del self._freq_of[victim]
        return victim

    def request_many(
        self, keys: Sequence[Key], priorities: Iterable[int] | None = None
    ) -> None:
        # request()/_on_hit/_admit/_evict inlined with the bucket maps in
        # locals (grid replay hot path); same frequency-bucket updates in
        # the same order, so decisions match the per-request path.
        freq_of = self._freq_of
        buckets = self._buckets
        capacity = self.capacity
        stats = self.stats
        if capacity == 0:
            stats.misses += len(keys)
            return
        get_freq = freq_of.get
        get_bucket = buckets.get
        min_freq = self._min_freq  # mirrored in a local, written back below
        hits = misses = evictions = 0
        for key in keys:
            freq = get_freq(key)
            if freq is not None:
                hits += 1
                bucket = buckets[freq]
                del bucket[key]
                if not bucket:
                    del buckets[freq]
                    if min_freq == freq:
                        min_freq = freq + 1
                freq = freq + 1
                freq_of[key] = freq
                up = get_bucket(freq)
                if up is None:
                    up = buckets[freq] = OrderedDict()
                up[key] = None
            else:
                misses += 1
                if len(freq_of) >= capacity:
                    bucket = buckets[min_freq]
                    victim, _ = bucket.popitem(last=False)
                    if not bucket:
                        del buckets[min_freq]
                    del freq_of[victim]
                    evictions += 1
                freq_of[key] = 1
                ones = get_bucket(1)
                if ones is None:
                    ones = buckets[1] = OrderedDict()
                ones[key] = None
                min_freq = 1
        self._min_freq = min_freq
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
