"""First-In First-Out replacement."""

from __future__ import annotations

from collections import OrderedDict

from .base import Key, SimpleCachePolicy

__all__ = ["FIFOCache"]


class FIFOCache(SimpleCachePolicy):
    """Evicts the block that has been resident longest, ignoring accesses."""

    name = "fifo"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._blocks: OrderedDict[Key, None] = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def _clear(self) -> None:
        self._blocks.clear()

    def _on_hit(self, key: Key) -> None:
        pass  # arrival order is unaffected by hits

    def _admit(self, key: Key, priority: int | None) -> None:
        self._blocks[key] = None

    def _evict(self) -> Key:
        victim, _ = self._blocks.popitem(last=False)
        return victim
