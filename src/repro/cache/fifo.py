"""First-In First-Out replacement."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from .base import Key, SimpleCachePolicy

__all__ = ["FIFOCache"]


class FIFOCache(SimpleCachePolicy):
    """Evicts the block that has been resident longest, ignoring accesses."""

    __slots__ = ("_blocks",)

    name = "fifo"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._blocks: OrderedDict[Key, None] = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def _clear(self) -> None:
        self._blocks.clear()

    def _on_hit(self, key: Key) -> None:
        pass  # arrival order is unaffected by hits

    def _admit(self, key: Key, priority: int | None) -> None:
        self._blocks[key] = None

    def _evict(self) -> Key:
        victim, _ = self._blocks.popitem(last=False)
        return victim

    def request_many(
        self, keys: Sequence[Key], priorities: Iterable[int] | None = None
    ) -> None:
        # Grid replay hot path, via admission indices instead of the
        # OrderedDict: because hits never reorder a FIFO, the cache
        # content is always the ``capacity`` most recent admissions, so
        # residency is one integer compare against the admission counter.
        # The OrderedDict is rebuilt at the end to keep request()/len()
        # and introspection consistent afterwards.
        blocks = self._blocks
        capacity = self.capacity
        stats = self.stats
        if capacity == 0:
            stats.misses += len(keys)
            return
        admitted: dict[Key, int] = {}
        for idx, key in enumerate(blocks):  # oldest first = admission order
            admitted[key] = idx
        total = len(admitted)
        floor = total - capacity
        get = admitted.get
        hits = misses = 0
        for key in keys:
            idx = get(key)
            if idx is not None and idx >= floor:
                hits += 1
            else:
                misses += 1
                admitted[key] = total
                total += 1
                floor += 1
        stats.hits += hits
        stats.misses += misses
        stats.evictions += max(0, total - capacity)
        blocks.clear()
        resident = sorted(
            (idx, key) for key, idx in admitted.items() if idx >= total - capacity
        )
        for _, key in resident:
            blocks[key] = None
