"""Adaptive Replacement Cache (Megiddo & Modha, FAST 2003).

A faithful implementation of the published algorithm: two resident lists
(``T1`` recency, ``T2`` frequency), two ghost lists (``B1``, ``B2``)
remembering recently evicted keys, and the adaptation target ``p`` that
continuously rebalances recency versus frequency based on which ghost list
takes hits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from .base import CachePolicy, Key

__all__ = ["ARCCache"]


class ARCCache(CachePolicy):
    """The full ARC algorithm (Figure 4 of the paper)."""

    __slots__ = ("_t1", "_t2", "_b1", "_b2", "_p")

    name = "arc"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._t1: OrderedDict[Key, None] = OrderedDict()
        self._t2: OrderedDict[Key, None] = OrderedDict()
        self._b1: OrderedDict[Key, None] = OrderedDict()
        self._b2: OrderedDict[Key, None] = OrderedDict()
        self._p = 0.0

    # -- introspection ----------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._t1 or key in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    @property
    def target_p(self) -> float:
        """Current adaptation target (size aimed for T1)."""
        return self._p

    def _clear(self) -> None:
        self._t1.clear()
        self._t2.clear()
        self._b1.clear()
        self._b2.clear()
        self._p = 0.0

    # -- algorithm ----------------------------------------------------------
    def _replace(self, in_b2: bool) -> None:
        """Demote one resident block to the appropriate ghost list."""
        t1_len = len(self._t1)
        if t1_len >= 1 and (t1_len > self._p or (in_b2 and t1_len == self._p)):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        else:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None
        self.stats.evictions += 1

    def request(self, key: Key, priority: int | None = None) -> bool:
        if self.capacity == 0:
            self.stats.misses += 1
            return False
        c = self.capacity
        # Case I: hit in T1 or T2 -> promote to T2 MRU.
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = None
            self.stats.hits += 1
            return True
        if key in self._t2:
            self._t2.move_to_end(key)
            self.stats.hits += 1
            return True
        # Case II: ghost hit in B1 -> favour recency.
        if key in self._b1:
            delta = max(len(self._b2) / len(self._b1), 1.0)
            self._p = min(float(c), self._p + delta)
            self._replace(in_b2=False)
            del self._b1[key]
            self._t2[key] = None
            self.stats.misses += 1
            return False
        # Case III: ghost hit in B2 -> favour frequency.
        if key in self._b2:
            delta = max(len(self._b1) / len(self._b2), 1.0)
            self._p = max(0.0, self._p - delta)
            self._replace(in_b2=True)
            del self._b2[key]
            self._t2[key] = None
            self.stats.misses += 1
            return False
        # Case IV: full miss.
        l1 = len(self._t1) + len(self._b1)
        l2 = len(self._t2) + len(self._b2)
        if l1 == c:
            if len(self._t1) < c:
                self._b1.popitem(last=False)
                self._replace(in_b2=False)
            else:
                self._t1.popitem(last=False)
                self.stats.evictions += 1
        elif l1 < c and l1 + l2 >= c:
            if l1 + l2 == 2 * c:
                self._b2.popitem(last=False)
            self._replace(in_b2=False)
        self._t1[key] = None
        self.stats.misses += 1
        return False

    def request_many(
        self, keys: Sequence[Key], priorities: Iterable[int] | None = None
    ) -> None:
        # request()/_replace inlined with the four lists and ``p`` in
        # locals (grid replay hot path).  Same case order and the same
        # adaptation arithmetic as request(), so decisions match the
        # per-request path exactly.
        stats = self.stats
        if self.capacity == 0:
            stats.misses += len(keys)
            return
        c = self.capacity
        t1, t2, b1, b2 = self._t1, self._t2, self._b1, self._b2
        p = self._p
        hits = misses = evictions = 0
        for key in keys:
            if key in t1:
                del t1[key]
                t2[key] = None
                hits += 1
                continue
            if key in t2:
                t2.move_to_end(key)
                hits += 1
                continue
            if key in b1:
                p = min(float(c), p + max(len(b2) / len(b1), 1.0))
                t1_len = len(t1)  # _replace(in_b2=False)
                if t1_len >= 1 and t1_len > p:
                    victim, _ = t1.popitem(last=False)
                    b1[victim] = None
                else:
                    victim, _ = t2.popitem(last=False)
                    b2[victim] = None
                evictions += 1
                del b1[key]
                t2[key] = None
                misses += 1
                continue
            if key in b2:
                p = max(0.0, p - max(len(b1) / len(b2), 1.0))
                t1_len = len(t1)  # _replace(in_b2=True)
                if t1_len >= 1 and t1_len >= p:
                    victim, _ = t1.popitem(last=False)
                    b1[victim] = None
                else:
                    victim, _ = t2.popitem(last=False)
                    b2[victim] = None
                evictions += 1
                del b2[key]
                t2[key] = None
                misses += 1
                continue
            l1 = len(t1) + len(b1)
            l2 = len(t2) + len(b2)
            if l1 == c:
                if len(t1) < c:
                    b1.popitem(last=False)
                    t1_len = len(t1)  # _replace(in_b2=False)
                    if t1_len >= 1 and t1_len > p:
                        victim, _ = t1.popitem(last=False)
                        b1[victim] = None
                    else:
                        victim, _ = t2.popitem(last=False)
                        b2[victim] = None
                else:
                    t1.popitem(last=False)
                evictions += 1
            elif l1 < c and l1 + l2 >= c:
                if l1 + l2 == 2 * c:
                    b2.popitem(last=False)
                t1_len = len(t1)  # _replace(in_b2=False)
                if t1_len >= 1 and t1_len > p:
                    victim, _ = t1.popitem(last=False)
                    b1[victim] = None
                else:
                    victim, _ = t2.popitem(last=False)
                    b2[victim] = None
                evictions += 1
            t1[key] = None
            misses += 1
        self._p = p
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
