"""Multi-Queue replacement (Zhou, Philbin & Li, USENIX ATC 2001).

MQ keeps ``m`` LRU queues; a block with reference count ``f`` lives in
queue ``min(log2(f), m-1)``, so frequently-hit blocks climb queues and
one-shot blocks stay at the bottom.  Two mechanisms keep it honest:

* **expiry** — every resident block carries ``expire_time = now +
  life_time``; when the LRU head of a queue has expired it is demoted one
  queue (long-idle hot blocks cool down level by level);
* **Qout ghost** — a bounded FIFO of evicted keys with their reference
  counts, so a block readmitted soon after eviction resumes its old
  frequency instead of restarting at 1.

An instructive baseline next to FBF: both are multi-queue schemes, but MQ
ranks blocks by *observed* access frequency while FBF ranks them by
*known future* references from the recovery plan — MQ has to see the
rereference it is trying to keep, FBF does not.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import CachePolicy, Key

__all__ = ["MQCache"]


class MQCache(CachePolicy):
    """The MQ algorithm with the paper's queue/expiry/ghost structure."""

    __slots__ = (
        "n_queues",
        "life_time",
        "qout_capacity",
        "_clock",
        "_queues",
        "_level",
        "_freq",
        "_expire",
        "_qout",
    )

    name = "mq"

    def __init__(
        self,
        capacity: int,
        n_queues: int = 8,
        life_time: int = 128,
        qout_factor: int = 4,
    ):
        if n_queues < 1:
            raise ValueError(f"n_queues must be >= 1, got {n_queues}")
        if life_time < 1:
            raise ValueError(f"life_time must be >= 1, got {life_time}")
        if qout_factor < 0:
            raise ValueError(f"qout_factor must be >= 0, got {qout_factor}")
        super().__init__(capacity)
        self.n_queues = n_queues
        self.life_time = life_time
        self.qout_capacity = qout_factor * capacity
        self._clock = 0
        self._queues: list[OrderedDict[Key, None]] = [
            OrderedDict() for _ in range(n_queues)
        ]
        self._level: dict[Key, int] = {}
        self._freq: dict[Key, int] = {}
        self._expire: dict[Key, int] = {}
        self._qout: OrderedDict[Key, int] = OrderedDict()  # key -> saved freq

    # -- introspection --------------------------------------------------------
    def __contains__(self, key: Key) -> bool:
        return key in self._level

    def __len__(self) -> int:
        return len(self._level)

    def level_of(self, key: Key) -> int:
        """Queue index of a resident block (test/debug hook)."""
        return self._level[key]

    def _clear(self) -> None:
        for q in self._queues:
            q.clear()
        self._level.clear()
        self._freq.clear()
        self._expire.clear()
        self._qout.clear()
        self._clock = 0

    # -- mechanics ----------------------------------------------------------
    @staticmethod
    def _queue_for(freq: int, n_queues: int) -> int:
        level = freq.bit_length() - 1  # floor(log2(freq))
        return min(level, n_queues - 1)

    def _place(self, key: Key, freq: int) -> None:
        level = self._queue_for(freq, self.n_queues)
        self._queues[level][key] = None
        self._level[key] = level
        self._freq[key] = freq
        self._expire[key] = self._clock + self.life_time

    def _remove(self, key: Key) -> None:
        level = self._level.pop(key)
        del self._queues[level][key]
        del self._freq[key]
        del self._expire[key]

    def _adjust_expired(self) -> None:
        """Demote any queue head whose lifetime ran out (paper's Adjust)."""
        for level in range(self.n_queues - 1, 0, -1):
            q = self._queues[level]
            while q:
                head = next(iter(q))
                if self._expire[head] >= self._clock:
                    break
                del q[head]
                self._queues[level - 1][head] = None
                self._level[head] = level - 1
                self._expire[head] = self._clock + self.life_time

    def _evict(self) -> None:
        for q in self._queues:
            if q:
                victim, _ = q.popitem(last=False)
                freq = self._freq.pop(victim)
                del self._level[victim]
                del self._expire[victim]
                if self.qout_capacity:
                    self._qout[victim] = freq
                    while len(self._qout) > self.qout_capacity:
                        self._qout.popitem(last=False)
                self.stats.evictions += 1
                return
        raise RuntimeError("evict on empty cache")  # pragma: no cover

    # -- request ---------------------------------------------------------------
    def request(self, key: Key, priority: int | None = None) -> bool:
        self._clock += 1
        if key in self._level:
            self.stats.hits += 1
            freq = self._freq[key]
            self._remove(key)
            self._place(key, freq + 1)
            self._adjust_expired()
            return True
        self.stats.misses += 1
        if self.capacity == 0:
            return False
        if len(self._level) >= self.capacity:
            self._evict()
        freq = self._qout.pop(key, 0) + 1
        self._place(key, freq)
        self._adjust_expired()
        return False
