"""Name-based registry of replacement policies.

The FBF policy itself lives in :mod:`repro.core` (it is the paper's
contribution, not a baseline) but registers here so experiment configs can
name every policy uniformly.
"""

from __future__ import annotations

from typing import Callable

from .arc import ARCCache
from .base import CachePolicy
from .fbr import FBRCache
from .fifo import FIFOCache
from .lfu import LFUCache
from .lirs import LIRSCache
from .lrfu import LRFUCache
from .lru import LRUCache
from .lruk import LRUKCache
from .mq import MQCache
from .twoq import TwoQCache

__all__ = ["POLICIES", "PAPER_BASELINES", "make_policy", "available_policies"]


def _make_fbf(capacity: int, **kwargs) -> CachePolicy:
    from ..core.fbf_cache import FBFCache

    return FBFCache(capacity, **kwargs)


POLICIES: dict[str, Callable[[int], CachePolicy]] = {
    "fifo": FIFOCache,
    "lru": LRUCache,
    "lfu": LFUCache,
    "arc": ARCCache,
    "lru2": LRUKCache,
    "2q": TwoQCache,
    "lrfu": LRFUCache,
    "fbr": FBRCache,
    "mq": MQCache,
    "lirs": LIRSCache,
    "fbf": _make_fbf,
}

#: the four baselines the paper compares against, in its reporting order.
PAPER_BASELINES: tuple[str, ...] = ("fifo", "lru", "lfu", "arc")


def available_policies() -> tuple[str, ...]:
    return tuple(POLICIES)


def make_policy(name: str, capacity: int, **kwargs) -> CachePolicy:
    """Instantiate a policy by registry name."""
    key = name.strip().lower()
    try:
        factory = POLICIES[key]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; available: {', '.join(sorted(POLICIES))}"
        ) from None
    return factory(capacity, **kwargs)
