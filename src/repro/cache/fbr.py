"""Frequency-Based Replacement (Robinson & Devarakonda, SIGMETRICS 1990).

FBR keeps an LRU stack partitioned into a *new* section (top), a *middle*
section, and an *old* section (bottom).  Reference counts are maintained,
but a hit on a block in the new section does **not** increment its count —
this "factors out locality" so that bursts of correlated references don't
inflate frequency.  The victim is the least-frequently-used block of the
old section (LRU among ties).  Counts are periodically halved (``a_max``
aging) to let formerly-hot blocks cool down.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import Key, SimpleCachePolicy

__all__ = ["FBRCache"]


class FBRCache(SimpleCachePolicy):
    """FBR with configurable section fractions and count aging."""

    __slots__ = ("new_size", "old_size", "a_max", "_stack", "_count")

    name = "fbr"

    def __init__(
        self,
        capacity: int,
        new_fraction: float = 0.25,
        old_fraction: float = 0.5,
        a_max: int = 64,
    ):
        if not 0.0 < new_fraction < 1.0:
            raise ValueError(f"new_fraction must be in (0,1), got {new_fraction}")
        if not 0.0 < old_fraction < 1.0:
            raise ValueError(f"old_fraction must be in (0,1), got {old_fraction}")
        if new_fraction + old_fraction > 1.0:
            raise ValueError("new_fraction + old_fraction must be <= 1")
        if a_max < 2:
            raise ValueError(f"a_max must be >= 2, got {a_max}")
        super().__init__(capacity)
        self.new_size = int(capacity * new_fraction)
        self.old_size = max(1, int(capacity * old_fraction)) if capacity else 0
        self.a_max = a_max
        self._stack: OrderedDict[Key, None] = OrderedDict()  # MRU first
        self._count: dict[Key, int] = {}

    def __contains__(self, key: Key) -> bool:
        return key in self._stack

    def __len__(self) -> int:
        return len(self._stack)

    def _clear(self) -> None:
        self._stack.clear()
        self._count.clear()

    def _in_new_section(self, key: Key) -> bool:
        for pos, k in enumerate(self._stack):
            if k == key:
                return pos < self.new_size
        raise KeyError(key)  # pragma: no cover - guarded by caller

    def _old_section_keys(self) -> list[Key]:
        n = len(self._stack)
        start = n - self.old_size
        return [k for pos, k in enumerate(self._stack) if pos >= start]

    def _age_counts(self) -> None:
        if sum(self._count.values()) > self.a_max * max(1, len(self._stack)):
            for k in self._count:
                self._count[k] = (self._count[k] + 1) // 2

    def _on_hit(self, key: Key) -> None:
        if not self._in_new_section(key):
            self._count[key] += 1
            self._age_counts()
        self._stack.move_to_end(key, last=False)  # to MRU (front)

    def _admit(self, key: Key, priority: int | None) -> None:
        self._count[key] = 1
        self._stack[key] = None
        self._stack.move_to_end(key, last=False)

    def _evict(self) -> Key:
        old = self._old_section_keys()
        # least count wins; among ties prefer the LRU-most (deepest) block.
        victim = min(reversed(old), key=lambda k: self._count[k])
        del self._stack[victim]
        del self._count[victim]
        return victim
