"""Historical import path for the replacement-policy interface.

The interface itself lives in :mod:`repro.core.policy` (layer 0 of the
package's layer DAG) so that :mod:`repro.core.fbf_cache` can subclass
:class:`CachePolicy` without importing upward into ``repro.cache``.
This module re-exports it unchanged; both paths name the same classes.
"""

from __future__ import annotations

from ..core.policy import CachePolicy, CacheStats, Key, SimpleCachePolicy

__all__ = ["CacheStats", "CachePolicy", "SimpleCachePolicy", "Key"]
